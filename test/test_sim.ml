(* Tests for the discrete-event network simulator. *)

module Engine = Lbrm_sim.Engine
module Loss = Lbrm_sim.Loss
module Topo = Lbrm_sim.Topo
module Route = Lbrm_sim.Route
module Net = Lbrm_sim.Net
module Builders = Lbrm_sim.Builders
module Trace = Lbrm_sim.Trace
module Rng = Lbrm_util.Rng

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checkf eps = Alcotest.check (Alcotest.float eps)
let qtest = QCheck_alcotest.to_alcotest

(* ---- Engine ---- *)

let engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:2. (fun () -> log := 2 :: !log));
  ignore (Engine.schedule e ~delay:1. (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~delay:3. (fun () -> log := 3 :: !log));
  Engine.run e;
  Alcotest.check (Alcotest.list Alcotest.int) "in time order" [ 1; 2; 3 ]
    (List.rev !log);
  checkf 1e-9 "clock at last event" 3. (Engine.now e)

let engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let timer = Engine.schedule e ~delay:1. (fun () -> fired := true) in
  Engine.cancel e timer;
  Engine.run e;
  checkb "cancelled" false !fired;
  checkb "not pending" false (Engine.is_pending timer)

let engine_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.every e ~period:1. (fun () -> incr count);
  Engine.run ~until:5.5 e;
  checki "five ticks" 5 !count;
  checkf 1e-9 "clock parked at until" 5.5 (Engine.now e);
  Engine.run ~until:7.5 e;
  checki "two more" 7 !count

(* Satellite: [every ~until] must not fire one period past the
   deadline.  Dyadic periods keep the expected tick times exact. *)
let engine_every_until_last_fire () =
  let e = Engine.create () in
  let fires = ref [] in
  Engine.every e ~period:0.5 ~until:1.75 (fun () ->
      fires := Engine.now e :: !fires);
  Engine.run e;
  (* unbounded drain: nothing may outlive the deadline *)
  Alcotest.check
    (Alcotest.list (Alcotest.float 1e-12))
    "last fire at largest tick <= until" [ 0.5; 1.0; 1.5 ] (List.rev !fires);
  checkf 1e-12 "clock stops at the last fire" 1.5 (Engine.now e);
  checki "no event left past the deadline" 0 (Engine.pending e)

let engine_every_until_boundary () =
  (* [until] exactly on a tick: that tick still fires. *)
  let e = Engine.create () in
  let fires = ref [] in
  Engine.every e ~period:0.5 ~until:2.0 (fun () ->
      fires := Engine.now e :: !fires);
  Engine.run e;
  Alcotest.check
    (Alcotest.list (Alcotest.float 1e-12))
    "deadline tick included" [ 0.5; 1.0; 1.5; 2.0 ] (List.rev !fires);
  checki "queue empty" 0 (Engine.pending e)

(* Regression: [run ~until] reinserts the first not-yet-due event; a
   callback scheduled afterwards, between the pause point and that
   event, must still fire first. *)
let engine_run_until_reinsert () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:10. (fun () -> log := "far" :: !log));
  Engine.run ~until:1. e;
  checkf 1e-9 "parked at until" 1. (Engine.now e);
  ignore (Engine.schedule e ~delay:2. (fun () -> log := "near" :: !log));
  Engine.run e;
  Alcotest.check (Alcotest.list Alcotest.string) "near fires before far"
    [ "near"; "far" ] (List.rev !log)

(* Burst + mass cancellation drives the calendar queue through grow,
   unlink and shrink while ordering must stay intact. *)
let engine_burst_cancel () =
  let e = Engine.create () in
  let fired = ref 0 in
  let last = ref (-1.) in
  let timers =
    Array.init 1000 (fun i ->
        Engine.schedule e
          ~delay:(float_of_int (i mod 10) /. 100.)
          (fun () ->
            let n = Engine.now e in
            checkb "nondecreasing" true (n >= !last);
            last := n;
            incr fired))
  in
  Array.iteri (fun i tm -> if i mod 3 = 0 then Engine.cancel e tm) timers;
  Engine.run e;
  checki "cancelled timers stay silent" 666 !fired;
  checki "drained" 0 (Engine.pending e)

let engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:1. (fun () ->
         log := "outer" :: !log;
         ignore
           (Engine.schedule e ~delay:0.5 (fun () -> log := "inner" :: !log))));
  Engine.run e;
  Alcotest.check (Alcotest.list Alcotest.string) "nested" [ "outer"; "inner" ]
    (List.rev !log);
  checki "2 events" 2 (Engine.events_processed e)

(* ---- Loss models ---- *)

let loss_bernoulli_rate () =
  let rng = Rng.create ~seed:4 in
  let model = Loss.bernoulli 0.3 in
  let drops = ref 0 in
  let n = 50000 in
  for i = 1 to n do
    if Loss.drops model ~rng ~now:(float_of_int i) then incr drops
  done;
  let rate = float_of_int !drops /. float_of_int n in
  checkb (Printf.sprintf "rate %.3f near 0.3" rate) true
    (Float.abs (rate -. 0.3) < 0.02)

let loss_burst_windows () =
  let rng = Rng.create ~seed:5 in
  let model = Loss.burst_windows [ (1., 2.); (5., 6.) ] in
  checkb "before" false (Loss.drops model ~rng ~now:0.5);
  checkb "inside first" true (Loss.drops model ~rng ~now:1.5);
  checkb "between" false (Loss.drops model ~rng ~now:3.);
  checkb "inside second" true (Loss.drops model ~rng ~now:5.5);
  checkb "after" false (Loss.drops model ~rng ~now:10.);
  checkb "boundary start inclusive" true (Loss.drops model ~rng ~now:1.0);
  checkb "boundary stop exclusive" false (Loss.drops model ~rng ~now:2.0)

let loss_gilbert_burstiness () =
  let rng = Rng.create ~seed:6 in
  let model = Loss.gilbert ~mean_good:10. ~mean_bad:1. () in
  (* Sample a long trace at 10 Hz: loss rate should be near the bad-state
     fraction 1/11, and losses should cluster (many consecutive). *)
  let drops = ref 0 and runs = ref 0 and in_run = ref false in
  let n = 200000 in
  for i = 1 to n do
    let lost = Loss.drops model ~rng ~now:(float_of_int i /. 10.) in
    if lost then begin
      incr drops;
      if not !in_run then incr runs
    end;
    in_run := lost
  done;
  let rate = float_of_int !drops /. float_of_int n in
  checkb (Printf.sprintf "rate %.3f near 1/11" rate) true
    (Float.abs (rate -. (1. /. 11.)) < 0.02);
  (* Clustering: mean run length about mean_bad * 10 samples. *)
  let mean_run = float_of_int !drops /. float_of_int (Stdlib.max 1 !runs) in
  checkb (Printf.sprintf "bursty (mean run %.1f)" mean_run) true (mean_run > 3.)

let loss_combine () =
  let rng = Rng.create ~seed:7 in
  let model = Loss.combine [ Loss.none; Loss.burst_windows [ (0., 1.) ] ] in
  checkb "any component drops" true (Loss.drops model ~rng ~now:0.5);
  checkb "none drop" false (Loss.drops model ~rng ~now:2.)

(* ---- Links ---- *)

let link_serialization () =
  let topo = Topo.create () in
  let a = Topo.add_node topo Host and b = Topo.add_node topo Host in
  (* 1 Mbit/s, 10 ms propagation: a 1250-byte packet serializes in 10 ms. *)
  let l = Topo.add_link topo ~bandwidth:1e6 ~delay:0.01 ~src:a ~dst:b () in
  let rng = Rng.create ~seed:8 in
  (match Topo.transmit_decision l ~rng ~now:0. ~size:1250 with
  | Topo.Deliver at -> checkf 1e-9 "tx + prop" 0.02 at
  | _ -> Alcotest.fail "dropped");
  (* Second packet queues behind the first. *)
  (match Topo.transmit_decision l ~rng ~now:0. ~size:1250 with
  | Topo.Deliver at -> checkf 1e-9 "queued behind" 0.03 at
  | _ -> Alcotest.fail "dropped");
  checki "delivered counter" 2 (Topo.packets_delivered l);
  checki "bytes" 2500 (Topo.bytes_delivered l)

let link_queue_overflow () =
  let topo = Topo.create () in
  let a = Topo.add_node topo Host and b = Topo.add_node topo Host in
  let l =
    Topo.add_link topo ~bandwidth:1e6 ~delay:0.01 ~queue:2 ~src:a ~dst:b ()
  in
  let rng = Rng.create ~seed:9 in
  let outcomes =
    List.init 5 (fun _ -> Topo.transmit_decision l ~rng ~now:0. ~size:1250)
  in
  let drops =
    List.length
      (List.filter (function Topo.Dropped_queue -> true | _ -> false) outcomes)
  in
  checkb "some queue drops" true (drops >= 2);
  checki "counter matches" drops (Topo.drops_queue l)

let link_infinite_bandwidth () =
  let topo = Topo.create () in
  let a = Topo.add_node topo Host and b = Topo.add_node topo Host in
  let l = Topo.add_link topo ~delay:0.005 ~src:a ~dst:b () in
  let rng = Rng.create ~seed:10 in
  match Topo.transmit_decision l ~rng ~now:1. ~size:1000000 with
  | Topo.Deliver at -> checkf 1e-9 "pure propagation" 1.005 at
  | _ -> Alcotest.fail "dropped"

(* ---- Routing ---- *)

let routing_shortest_path () =
  (* a --1ms-- b --1ms-- c  and a direct a--5ms--c: route via b. *)
  let topo = Topo.create () in
  let a = Topo.add_node topo Host in
  let b = Topo.add_node topo Router in
  let c = Topo.add_node topo Host in
  let _ = Topo.add_duplex topo ~delay:0.001 a b in
  let _ = Topo.add_duplex topo ~delay:0.001 b c in
  let _ = Topo.add_duplex topo ~delay:0.005 a c in
  let route = Route.create topo in
  checkf 1e-9 "distance via b" 0.002 (Route.distance route ~src:a ~dst:c);
  checki "2 hops" 2 (Route.hops route ~src:a ~dst:c);
  (match Route.next_hop route ~src:a ~dst:c with
  | Some l -> checki "first hop toward b" b (Topo.link_dst l)
  | None -> Alcotest.fail "unreachable")

let routing_unreachable () =
  let topo = Topo.create () in
  let a = Topo.add_node topo Host in
  let b = Topo.add_node topo Host in
  let route = Route.create topo in
  checkb "no route" true (Route.next_hop route ~src:a ~dst:b = None);
  checkb "infinite distance" true (Route.distance route ~src:a ~dst:b = infinity)

(* ---- Net: unicast / multicast / TTL ---- *)

let mk_lan hosts =
  let topo, switch, hs = Builders.lan ~hosts () in
  let engine = Engine.create () in
  let net = Net.create ~engine ~topo ~size_of:(fun s -> String.length s) () in
  (engine, net, switch, hs)

let net_unicast () =
  let engine, net, _, hs = mk_lan 3 in
  let got = ref [] in
  Net.set_handler net hs.(1) (fun ~now:_ ~src msg -> got := (src, msg) :: !got);
  Net.unicast net ~src:hs.(0) ~dst:hs.(1) "hello";
  Engine.run engine;
  (match !got with
  | [ (src, "hello") ] -> checki "src" hs.(0) src
  | _ -> Alcotest.fail "expected exactly one delivery");
  (* Propagation (2 x 0.9 ms) plus serialization of 5 bytes at 10 Mbit/s
     on each hop. *)
  checkf 1e-5 "two LAN hops" ((2. *. 0.9e-3) +. (2. *. 40. /. 10e6))
    (Engine.now engine)

let net_loopback () =
  let engine, net, _, hs = mk_lan 1 in
  let got = ref 0 in
  Net.set_handler net hs.(0) (fun ~now:_ ~src:_ _ -> incr got);
  Net.unicast net ~src:hs.(0) ~dst:hs.(0) "self";
  Engine.run engine;
  checki "delivered to self" 1 !got

let net_multicast_membership () =
  let engine, net, _, hs = mk_lan 4 in
  let counts = Array.make 4 0 in
  Array.iteri
    (fun i h -> Net.set_handler net h (fun ~now:_ ~src:_ _ -> counts.(i) <- counts.(i) + 1))
    hs;
  Net.join net ~group:7 hs.(1);
  Net.join net ~group:7 hs.(2);
  Net.multicast net ~src:hs.(0) ~group:7 "m";
  Engine.run engine;
  Alcotest.check (Alcotest.array Alcotest.int) "only members" [| 0; 1; 1; 0 |]
    counts

let net_multicast_sender_excluded () =
  let engine, net, _, hs = mk_lan 2 in
  let self = ref 0 and other = ref 0 in
  Net.set_handler net hs.(0) (fun ~now:_ ~src:_ _ -> incr self);
  Net.set_handler net hs.(1) (fun ~now:_ ~src:_ _ -> incr other);
  Net.join net ~group:1 hs.(0);
  Net.join net ~group:1 hs.(1);
  Net.multicast net ~src:hs.(0) ~group:1 "m";
  Engine.run engine;
  checki "sender skipped" 0 !self;
  checki "member got it" 1 !other

let net_multicast_shared_link_once () =
  (* Two sites, three members behind the remote tail: the tail circuit
     must carry the packet exactly once. *)
  let wan = Builders.dis_wan ~sites:2 ~hosts_per_site:3 () in
  let engine = Engine.create () in
  let net =
    Net.create ~engine ~topo:wan.topo ~size_of:(fun s -> String.length s) ()
  in
  let got = ref 0 in
  Array.iter
    (fun h ->
      Net.join net ~group:1 h;
      Net.set_handler net h (fun ~now:_ ~src:_ _ -> incr got))
    wan.sites.(1).hosts;
  Net.multicast net ~src:wan.sites.(0).hosts.(0) ~group:1 "m";
  Engine.run engine;
  checki "all three members" 3 !got;
  checki "tail crossed once" 1
    (Topo.packets_delivered wan.sites.(1).tail_down)

let net_ttl_scoping () =
  (* TTL 2 reaches hosts within the site (host->gw->host) but not across
     the WAN (host->gw->edge->bb->edge->gw->host = 6 links). *)
  let wan = Builders.dis_wan ~sites:2 ~hosts_per_site:2 () in
  let engine = Engine.create () in
  let net =
    Net.create ~engine ~topo:wan.topo ~size_of:(fun s -> String.length s) ()
  in
  let local = ref 0 and remote = ref 0 in
  let h_local = wan.sites.(0).hosts.(1) in
  let h_remote = wan.sites.(1).hosts.(0) in
  Net.join net ~group:1 h_local;
  Net.join net ~group:1 h_remote;
  Net.set_handler net h_local (fun ~now:_ ~src:_ _ -> incr local);
  Net.set_handler net h_remote (fun ~now:_ ~src:_ _ -> incr remote);
  Net.multicast net ~ttl:2 ~src:wan.sites.(0).hosts.(0) ~group:1 "m";
  Engine.run engine;
  checki "local sibling reached" 1 !local;
  checki "remote member scoped out" 0 !remote

let net_leave () =
  let engine, net, _, hs = mk_lan 2 in
  let got = ref 0 in
  Net.set_handler net hs.(1) (fun ~now:_ ~src:_ _ -> incr got);
  Net.join net ~group:1 hs.(1);
  Net.multicast net ~src:hs.(0) ~group:1 "a";
  Engine.run engine;
  Net.leave net ~group:1 hs.(1);
  Net.multicast net ~src:hs.(0) ~group:1 "b";
  Engine.run engine;
  checki "one delivery" 1 !got

let net_rtt_symmetry () =
  let wan = Builders.dis_wan ~sites:2 ~hosts_per_site:2 () in
  let engine = Engine.create () in
  let net =
    Net.create ~engine ~topo:wan.topo ~size_of:(fun s -> String.length s) ()
  in
  let a = wan.sites.(0).hosts.(0) and b = wan.sites.(1).hosts.(0) in
  checkf 1e-9 "symmetric" (Net.rtt net a b) (Net.rtt net b a);
  (* Paper §2.2.2: cross-site RTT about 80 ms, intra-site a few ms. *)
  let cross = Net.rtt net a b in
  checkb (Printf.sprintf "cross-site rtt %.1f ms" (cross *. 1e3)) true
    (cross > 0.06 && cross < 0.1);
  let intra = Net.rtt net a wan.sites.(0).hosts.(1) in
  checkb (Printf.sprintf "intra-site rtt %.1f ms" (intra *. 1e3)) true
    (intra > 0.002 && intra < 0.006)

(* ---- dis_wan builder ---- *)

let builder_shape () =
  let sites = 5 and hosts_per_site = 4 in
  let wan = Builders.dis_wan ~sites ~hosts_per_site () in
  checki "site count" sites (Array.length wan.sites);
  Array.iter
    (fun s -> checki "hosts per site" hosts_per_site (Array.length s.Builders.hosts))
    wan.sites;
  checki "all hosts" (sites * hosts_per_site) (List.length (Builders.all_hosts wan));
  checkb "host kind" true
    (Topo.kind wan.topo wan.sites.(0).hosts.(0) = Topo.Host);
  checkb "gateway kind" true
    (Topo.kind wan.topo wan.sites.(0).gateway = Topo.Router);
  Alcotest.check (Alcotest.option Alcotest.int) "site lookup" (Some 2)
    (Builders.site_of_host wan wan.sites.(2).hosts.(1));
  Alcotest.check (Alcotest.option Alcotest.int) "router is not in a site" None
    (Builders.site_of_host wan wan.backbone)

(* ---- Trace ---- *)

let trace_counters () =
  let t = Trace.create () in
  Trace.incr t "x";
  Trace.incr ~by:4 t "x";
  Trace.incr t "y";
  checki "x" 5 (Trace.get t "x");
  checki "absent" 0 (Trace.get t "z");
  Trace.observe t "lat" 1.;
  Trace.observe t "lat" 3.;
  checkf 1e-9 "sample mean" 2.
    (Lbrm_util.Stats.Sample.mean (Trace.sample t "lat"));
  Trace.reset t;
  checki "reset" 0 (Trace.get t "x")

let prop_route_triangle =
  (* On random dis_wan topologies, routed distances obey symmetry (all
     links are duplex with equal delays) and the triangle inequality. *)
  QCheck.Test.make ~count:50 ~name:"route: symmetric + triangle inequality"
    QCheck.(pair (int_range 2 6) (int_range 1 4))
    (fun (sites, hosts_per_site) ->
      let wan = Builders.dis_wan ~sites ~hosts_per_site () in
      let route = Route.create wan.topo in
      let hosts = Array.of_list (Builders.all_hosts wan) in
      let d a b = Route.distance route ~src:a ~dst:b in
      Array.for_all
        (fun a ->
          Array.for_all
            (fun b ->
              Float.abs (d a b -. d b a) < 1e-12
              && Array.for_all
                   (fun c -> d a b <= d a c +. d c b +. 1e-12)
                   hosts)
            hosts)
        hosts)

(* Satellite: under membership churn the pruned-tree cache must (a)
   stop rebuilding once the (recurring) membership states have all been
   seen, (b) never rebuild the stable group's tree, and (c) stay within
   its configured capacity. *)
let net_mcast_cache_churn () =
  let wan = Builders.dis_wan ~sites:8 ~hosts_per_site:4 () in
  let engine = Engine.create () in
  let net =
    Net.create ~engine ~topo:wan.topo ~size_of:String.length ()
  in
  let hosts = Array.of_list (Builders.all_hosts wan) in
  let n = Array.length hosts in
  let src = hosts.(0) in
  Array.iter (fun h -> Net.set_handler net h (fun ~now:_ ~src:_ _ -> ())) hosts;
  (* Group 7 is stable; groups 0..6 churn below. *)
  for i = 1 to n - 1 do
    Net.join net ~group:7 hosts.(i);
    Net.join net ~group:(i mod 7) hosts.(i)
  done;
  (* Warm every group's tree once. *)
  for g = 0 to 7 do
    Net.multicast net ~src ~group:g "warm"
  done;
  Engine.run engine;
  let warm_builds = Net.mcast_tree_builds net in
  let ops = 10_000 in
  for i = 0 to ops - 1 do
    let g = i mod 7 in
    let h = hosts.(1 + (i mod (n - 1))) in
    if Net.is_member net ~group:g h then Net.leave net ~group:g h
    else Net.join net ~group:g h;
    Net.multicast net ~src ~group:g "m";
    Net.multicast net ~src ~group:7 "s";
    Engine.run engine
  done;
  (* Each churning group cycles through a bounded set of membership
     states (every host toggles once per period), so after the first
     cycle every multicast hits the fingerprint cache: rebuilds stay
     near the number of distinct states, not the number of ops. *)
  let builds = Net.mcast_tree_builds net - warm_builds in
  let distinct_states = 7 * 2 * (n - 1) in
  checkb
    (Printf.sprintf "rebuilds bounded by distinct states (%d <= %d)" builds
       distinct_states)
    true
    (builds <= distinct_states);
  (* 2 multicasts per op; everything not rebuilt was a hit. *)
  checki "every multicast either hit or built"
    ((2 * ops) + 8)
    (Net.mcast_cache_hits net + Net.mcast_tree_builds net);
  checkb "stable group never rebuilds: hits dominate" true
    (Net.mcast_cache_hits net >= ops);
  checkb "cache within capacity" true
    (Net.mcast_cache_size net <= Net.mcast_cache_cap net)

(* The cap is enforced: a tiny cache under the same churn still works
   (delivery unaffected) but holds at most [cap] trees. *)
let net_mcast_cache_cap () =
  let wan = Builders.dis_wan ~sites:4 ~hosts_per_site:3 () in
  let engine = Engine.create () in
  let net =
    Net.create ~mcast_cache_size:3 ~engine ~topo:wan.topo
      ~size_of:String.length ()
  in
  let hosts = Array.of_list (Builders.all_hosts wan) in
  let n = Array.length hosts in
  let src = hosts.(0) in
  let delivered = ref 0 in
  Array.iter
    (fun h -> Net.set_handler net h (fun ~now:_ ~src:_ _ -> incr delivered))
    hosts;
  for i = 1 to n - 1 do
    Net.join net ~group:(i mod 5) hosts.(i)
  done;
  for i = 0 to 199 do
    let g = i mod 5 in
    let h = hosts.(1 + (i mod (n - 1))) in
    if Net.is_member net ~group:g h then Net.leave net ~group:g h
    else Net.join net ~group:g h;
    Net.multicast net ~src ~group:g "m";
    Engine.run engine
  done;
  checkb "cap enforced" true (Net.mcast_cache_size net <= 3);
  checkb "packets still delivered" true (!delivered > 0)

let prop_engine_fifo_ties =
  QCheck.Test.make ~name:"engine: equal-time events fire in posting order"
    QCheck.(list_of_size Gen.(1 -- 200) (int_bound 5))
    (fun slots ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iteri
        (fun i slot ->
          Engine.post_at e
            ~time:(float_of_int slot)
            (fun () -> fired := (slot, i) :: !fired))
        slots;
      Engine.run e;
      let expect =
        List.stable_sort
          (fun (a, _) (b, _) -> compare a b)
          (List.mapi (fun i s -> (s, i)) slots)
      in
      List.rev !fired = expect)

let prop_engine_random_schedules =
  QCheck.Test.make ~name:"engine: random schedules fire in time order"
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_inclusive 100.))
    (fun delays ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iter
        (fun d -> ignore (Engine.schedule e ~delay:d (fun () -> fired := Engine.now e :: !fired)))
        delays;
      Engine.run e;
      let out = List.rev !fired in
      out = List.sort Float.compare delays)

(* ---- fault plane ---- *)

let fault_state_epoch () =
  let topo = Topo.create () in
  let a = Topo.add_node topo Host in
  let b = Topo.add_node topo Host in
  let ab = Topo.add_duplex topo ~delay:0.001 a b in
  let e0 = Topo.state_epoch topo in
  checkb "nodes start up" true (Topo.node_up topo a);
  checkb "links start up" true (Topo.link_up (fst ab));
  Topo.set_node_up topo a false;
  checki "node flip bumps epoch" (e0 + 1) (Topo.state_epoch topo);
  Topo.set_node_up topo a false;
  checki "idempotent flip does not bump" (e0 + 1) (Topo.state_epoch topo);
  Topo.set_link_up topo (fst ab) false;
  checki "link flip bumps epoch" (e0 + 2) (Topo.state_epoch topo);
  Topo.set_node_up topo a true;
  Topo.set_link_up topo (fst ab) true;
  checki "restores bump too" (e0 + 4) (Topo.state_epoch topo)

let fault_down_node_drops_delivery () =
  let engine, net, _, hs = mk_lan 3 in
  let topo = Net.topo net in
  let got = ref 0 in
  Net.set_handler net hs.(1) (fun ~now:_ ~src:_ _ -> incr got);
  Topo.set_node_up topo hs.(1) false;
  Net.unicast net ~src:hs.(0) ~dst:hs.(1) "x";
  Engine.run engine;
  checki "down host hears nothing" 0 !got;
  Topo.set_node_up topo hs.(1) true;
  Net.unicast net ~src:hs.(0) ~dst:hs.(1) "y";
  Engine.run engine;
  checki "delivered after restart" 1 !got

let fault_down_link_counted () =
  (* Fresh routes and trees never include a down link, so Dropped_down
     accounts for packets already in flight: the multicast tree is
     captured at launch, and a link that dies while the packet crosses
     the LAN eats it at the switch. *)
  let engine, net, switch, hs = mk_lan 3 in
  let topo = Net.topo net in
  let got = ref 0 in
  Net.join net ~group:1 hs.(1);
  Net.set_handler net hs.(1) (fun ~now:_ ~src:_ _ -> incr got);
  let link =
    match Topo.find_link topo ~src:switch ~dst:hs.(1) with
    | Some l -> l
    | None -> Alcotest.fail "no downlink"
  in
  ignore
    (Engine.schedule engine ~delay:0.0001 (fun () ->
         Topo.set_link_up topo link false));
  Net.multicast net ~src:hs.(0) ~group:1 "x";
  Engine.run engine;
  checki "packet eaten in flight" 0 !got;
  checki "drop attributed to the dead link" 1 (Topo.drops_down link);
  checki "not counted as loss" 0 (Topo.drops_loss link)

let fault_route_around_down_link () =
  (* a --1ms-- b --1ms-- c with a direct a --5ms-- c fallback: routing
     prefers b until the a-b link dies, and must recover it on heal. *)
  let topo = Topo.create () in
  let a = Topo.add_node topo Host in
  let b = Topo.add_node topo Router in
  let c = Topo.add_node topo Host in
  let ab, _ = Topo.add_duplex topo ~delay:0.001 a b in
  let _ = Topo.add_duplex topo ~delay:0.001 b c in
  let _ = Topo.add_duplex topo ~delay:0.005 a c in
  let route = Route.create topo in
  checkf 1e-9 "via b" 0.002 (Route.distance route ~src:a ~dst:c);
  Topo.set_link_up topo ab false;
  checkf 1e-9 "around the dead link" 0.005
    (Route.distance route ~src:a ~dst:c);
  Topo.set_link_up topo ab true;
  checkf 1e-9 "healed" 0.002 (Route.distance route ~src:a ~dst:c);
  (* Down routers disappear from paths entirely. *)
  Topo.set_node_up topo b false;
  checkf 1e-9 "around the dead router" 0.005
    (Route.distance route ~src:a ~dst:c)

let fault_multicast_tree_invalidation () =
  (* Multicast trees are cached per (membership, topology-state) epoch:
     severing a site's tail must stop deliveries there without touching
     the other site, and healing must restore them. *)
  let wan = Builders.dis_wan ~sites:2 ~hosts_per_site:2 () in
  let engine = Engine.create () in
  let net = Net.create ~engine ~topo:wan.topo ~size_of:String.length () in
  let counts = Hashtbl.create 8 in
  let members =
    [ wan.sites.(0).Builders.hosts.(1); wan.sites.(1).Builders.hosts.(1) ]
  in
  List.iter
    (fun h ->
      Hashtbl.replace counts h 0;
      Net.join net ~group:1 h;
      Net.set_handler net h (fun ~now:_ ~src:_ _ ->
          Hashtbl.replace counts h (1 + Hashtbl.find counts h)))
    members;
  let src = wan.sites.(0).Builders.hosts.(0) in
  let local = List.nth members 0 and remote = List.nth members 1 in
  Net.multicast net ~src ~group:1 "a";
  Engine.run engine;
  checki "both sites reached" 1 (Hashtbl.find counts remote);
  let site1 = wan.sites.(1) in
  Topo.set_link_up wan.topo site1.Builders.tail_up false;
  Topo.set_link_up wan.topo site1.Builders.tail_down false;
  Net.multicast net ~src ~group:1 "b";
  Engine.run engine;
  checki "partitioned site unreachable" 1 (Hashtbl.find counts remote);
  checki "local site unaffected" 2 (Hashtbl.find counts local);
  Topo.set_link_up wan.topo site1.Builders.tail_up true;
  Topo.set_link_up wan.topo site1.Builders.tail_down true;
  Net.multicast net ~src ~group:1 "c";
  Engine.run engine;
  checki "healed site reachable again" 2 (Hashtbl.find counts remote)

module Fault = Lbrm_sim.Fault

let fault_apply_schedule () =
  let topo = Topo.create () in
  let a = Topo.add_node topo Host in
  let b = Topo.add_node topo Host in
  let ab, _ = Topo.add_duplex topo ~delay:0.001 a b in
  let engine = Engine.create () in
  let log = ref [] in
  Fault.apply ~engine ~topo
    ~on_crash:(fun n -> log := ("crash", n, Engine.now engine) :: !log)
    ~on_restart:(fun n -> log := ("restart", n, Engine.now engine) :: !log)
    (Fault.outage ~at:1.0 ~downtime:2.0 a
    @ [ Fault.link_down ~at:0.5 ab; Fault.link_up ~at:1.5 ab ]);
  ignore
    (Engine.schedule engine ~delay:1.2 (fun () ->
         checkb "down mid-outage" false (Topo.node_up topo a);
         checkb "link down mid-window" false (Topo.link_up ab)));
  Engine.run engine;
  checkb "back up after restart" true (Topo.node_up topo a);
  checkb "link back up" true (Topo.link_up ab);
  match List.rev !log with
  | [ ("crash", n1, t1); ("restart", n2, t2) ] ->
      checki "crash node" a n1;
      checki "restart node" a n2;
      checkf 1e-9 "crash time" 1.0 t1;
      checkf 1e-9 "restart time" 3.0 t2
  | _ -> Alcotest.fail "expected exactly one crash and one restart hook"

let fault_random_schedule_well_formed () =
  let wan = Builders.dis_wan ~sites:3 ~hosts_per_site:2 () in
  let rng = Rng.create ~seed:9 in
  let hosts = Builders.all_hosts wan in
  let horizon = 20. in
  let events =
    Fault.random_schedule ~rng ~wan ~hosts ~sites:[ 1; 2 ] ~crashes:4
      ~partitions:3 ~min_down:1. ~max_down:3. ~horizon ()
  in
  let crashes = ref [] and restarts = ref [] in
  List.iter
    (fun { Fault.at; what } ->
      checkb "within horizon" true (at >= 0. && at <= horizon);
      match what with
      | Fault.Crash n -> crashes := (n, at) :: !crashes
      | Fault.Restart n -> restarts := (n, at) :: !restarts
      | Fault.Link_down _ | Fault.Link_up _ -> ())
    events;
  checki "every crash has a restart" (List.length !crashes)
    (List.length !restarts);
  List.iter
    (fun (n, t_crash) ->
      checkb "restart strictly after its crash" true
        (List.exists (fun (m, t) -> m = n && t > t_crash) !restarts))
    !crashes;
  (* Same seed, same schedule. *)
  let events' =
    Fault.random_schedule ~rng:(Rng.create ~seed:9) ~wan ~hosts
      ~sites:[ 1; 2 ] ~crashes:4 ~partitions:3 ~min_down:1. ~max_down:3.
      ~horizon ()
  in
  checkb "deterministic in the seed" true
    (List.for_all2
       (fun (e : Fault.event) (e' : Fault.event) ->
         e.at = e'.at
         &&
         match (e.what, e'.what) with
         | Fault.Crash a, Fault.Crash b | Fault.Restart a, Fault.Restart b ->
             a = b
         | Fault.Link_down l, Fault.Link_down l'
         | Fault.Link_up l, Fault.Link_up l' ->
             l == l'
         | _ -> false)
       events events')

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick engine_ordering;
          Alcotest.test_case "cancel" `Quick engine_cancel;
          Alcotest.test_case "run until" `Quick engine_run_until;
          Alcotest.test_case "every ~until last fire" `Quick
            engine_every_until_last_fire;
          Alcotest.test_case "every ~until boundary tick" `Quick
            engine_every_until_boundary;
          Alcotest.test_case "run until + late schedule" `Quick
            engine_run_until_reinsert;
          Alcotest.test_case "burst + cancel" `Quick engine_burst_cancel;
          Alcotest.test_case "nested schedule" `Quick engine_nested_schedule;
          qtest prop_engine_random_schedules;
          qtest prop_engine_fifo_ties;
        ] );
      ("route-properties", [ qtest prop_route_triangle ]);
      ( "loss",
        [
          Alcotest.test_case "bernoulli rate" `Slow loss_bernoulli_rate;
          Alcotest.test_case "burst windows" `Quick loss_burst_windows;
          Alcotest.test_case "gilbert burstiness" `Slow loss_gilbert_burstiness;
          Alcotest.test_case "combine" `Quick loss_combine;
        ] );
      ( "link",
        [
          Alcotest.test_case "serialization + queueing" `Quick
            link_serialization;
          Alcotest.test_case "queue overflow" `Quick link_queue_overflow;
          Alcotest.test_case "infinite bandwidth" `Quick link_infinite_bandwidth;
        ] );
      ( "route",
        [
          Alcotest.test_case "shortest path" `Quick routing_shortest_path;
          Alcotest.test_case "unreachable" `Quick routing_unreachable;
        ] );
      ( "net",
        [
          Alcotest.test_case "unicast" `Quick net_unicast;
          Alcotest.test_case "loopback" `Quick net_loopback;
          Alcotest.test_case "multicast membership" `Quick
            net_multicast_membership;
          Alcotest.test_case "sender excluded" `Quick
            net_multicast_sender_excluded;
          Alcotest.test_case "shared link crossed once" `Quick
            net_multicast_shared_link_once;
          Alcotest.test_case "TTL scoping" `Quick net_ttl_scoping;
          Alcotest.test_case "leave" `Quick net_leave;
          Alcotest.test_case "RTTs match the paper's scenario" `Quick
            net_rtt_symmetry;
          Alcotest.test_case "mcast cache bounded under churn" `Slow
            net_mcast_cache_churn;
          Alcotest.test_case "mcast cache cap enforced" `Quick
            net_mcast_cache_cap;
        ] );
      ("builders", [ Alcotest.test_case "dis_wan shape" `Quick builder_shape ]);
      ("trace", [ Alcotest.test_case "counters and samples" `Quick trace_counters ]);
      ( "faults",
        [
          Alcotest.test_case "up/down flips bump the state epoch" `Quick
            fault_state_epoch;
          Alcotest.test_case "down host drops deliveries" `Quick
            fault_down_node_drops_delivery;
          Alcotest.test_case "down link drops are attributed" `Quick
            fault_down_link_counted;
          Alcotest.test_case "routing avoids down elements" `Quick
            fault_route_around_down_link;
          Alcotest.test_case "multicast tree invalidation" `Quick
            fault_multicast_tree_invalidation;
          Alcotest.test_case "fault schedule applies through the engine"
            `Quick fault_apply_schedule;
          Alcotest.test_case "random schedule well-formed + deterministic"
            `Quick fault_random_schedule_well_formed;
        ] );
    ]
