(* Soak and failure-injection tests: randomized deployments, combined
   fault models, reordering, and long-horizon runs.  These assert the
   end-to-end invariant the whole protocol exists for: after enough
   quiet time, every receiver either holds every packet or has
   explicitly given up on it (bounded retention only). *)

module Scenario = Lbrm_run.Scenario
module Loss = Lbrm_sim.Loss
module Topo = Lbrm_sim.Topo
module Trace = Lbrm_sim.Trace
module Builders = Lbrm_sim.Builders

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let qtest = QCheck_alcotest.to_alcotest

(* Random small deployments under random loss must always converge. *)
let prop_random_deployments_converge =
  QCheck.Test.make ~count:25 ~name:"soak: random deployments converge"
    QCheck.(
      quad (int_range 1 6) (* sites *)
        (int_range 1 4) (* receivers/site *)
        (int_range 0 30) (* loss percent *)
        (int_range 0 10000) (* seed *))
    (fun (sites, receivers_per_site, loss_pct, seed) ->
      let stat_ack = seed mod 2 = 0 in
      let cfg =
        { Lbrm.Config.default with stat_ack_enabled = stat_ack }
      in
      let d =
        Scenario.standard ~cfg ~seed ~sites ~receivers_per_site
          ~initial_estimate:(float_of_int sites)
          ~tail_loss:(fun _ ->
            Loss.bernoulli (float_of_int loss_pct /. 100.))
          ()
      in
      Scenario.drive_periodic d ~interval:0.5 ~count:15 ();
      Scenario.run d ~until:120.;
      Scenario.total_missing d = 0
      && Array.for_all
           (fun (r, _) -> Lbrm.Receiver.delivered r = 15)
           d.receivers)

let jitter_reordering_tolerated () =
  (* Heavy jitter on every tail circuit reorders packets in flight; the
     NACK batching delay should ride out most reordering, and everything
     must still be delivered exactly once. *)
  let cfg =
    { Lbrm.Config.default with stat_ack_enabled = false; nack_delay = 0.05 }
  in
  let d = Scenario.standard ~cfg ~seed:83 ~sites:4 ~receivers_per_site:3 () in
  Array.iter
    (fun site ->
      Topo.set_link_jitter site.Builders.tail_down 0.03
      (* mean 30 ms extra on a ~20 ms path: plenty of inversions *))
    d.wan.sites;
  Scenario.drive_periodic d ~interval:0.05 ~count:100 ();
  Scenario.run d ~until:60.;
  checki "nothing missing" 0 (Scenario.total_missing d);
  Array.iter
    (fun (r, _) ->
      checki "delivered exactly once each" 100 (Lbrm.Receiver.delivered r))
    d.receivers;
  (* Reordering inside the NACK delay must not spray NACKs: allow a few
     (deep reorder beyond 50 ms exists) but far fewer than the inversion
     count. *)
  let nacks = Trace.get (Scenario.trace d) "sent.nack" in
  checkb (Printf.sprintf "NACKs bounded (%d)" nacks) true (nacks < 100)

let combined_faults_soak () =
  (* Everything at once: bursty Gilbert tails, a mid-run primary
     failure with fail-over, statistical acking, and a site that goes
     dark and comes back. *)
  let cfg =
    {
      Lbrm.Config.default with
      deposit_timeout = 0.3;
      deposit_retry_limit = 2;
      epoch_interval = 5.;
      t_wait_init = 0.2;
    }
  in
  let d =
    Scenario.standard ~cfg ~seed:89 ~sites:6 ~receivers_per_site:3
      ~replica_count:1
      ~initial_estimate:6.
      ~tail_loss:(fun site ->
        if site = 4 then
          Loss.combine
            [
              Loss.gilbert ~mean_good:8. ~mean_bad:0.5 ();
              Loss.burst_windows [ (20., 35.) ];
            ]
        else Loss.gilbert ~mean_good:10. ~mean_bad:0.3 ())
      ()
  in
  (* Kill the primary's LAN at t = 25. *)
  let engine = Lbrm_run.Sim_runtime.engine d.runtime in
  ignore
    (Lbrm_sim.Engine.schedule engine ~delay:25. (fun () ->
         let gw = d.wan.sites.(0).Builders.gateway in
         (match Topo.find_link d.wan.topo ~src:gw ~dst:d.primary_node with
         | Some l -> Topo.set_link_loss l (Loss.bernoulli 1.)
         | None -> ());
         match Topo.find_link d.wan.topo ~src:d.primary_node ~dst:gw with
         | Some l -> Topo.set_link_loss l (Loss.bernoulli 1.)
         | None -> ()));
  Scenario.drive_periodic d ~interval:1. ~count:50 ();
  Scenario.run d ~until:240.;
  checkb "fail-over happened" true
    (Trace.get (Scenario.trace d) "failover.promoted" >= 1);
  checki "everything delivered everywhere despite the mayhem" 0
    (Scenario.total_missing d);
  Array.iter
    (fun (r, _) -> checki "all 50" 50 (Lbrm.Receiver.delivered r))
    d.receivers

let long_idle_stability () =
  (* A long idle stretch after one packet: heartbeats decay to h_max and
     stay there; no NACKs, no silence alarms, event count stays tiny
     (no timer leaks). *)
  let cfg = { Lbrm.Config.default with stat_ack_enabled = false } in
  let d = Scenario.standard ~cfg ~seed:97 ~sites:2 ~receivers_per_site:2 () in
  Scenario.drive_periodic d ~interval:1. ~count:1 ();
  Scenario.run d ~until:3600.;
  let trace = Scenario.trace d in
  checki "no NACKs over an idle hour" 0 (Trace.get trace "sent.nack");
  checki "no silence alarms" 0 (Trace.get trace "loss.silence");
  (* ~111 heartbeats/hour at h_max=32s, plus the warm-up ramp. *)
  let hb = Lbrm.Source.heartbeats_sent d.source in
  checkb (Printf.sprintf "heartbeats settled at 1/h_max (%d)" hb) true
    (hb > 100 && hb < 130)

let many_sites_scale () =
  (* A 100-site run exercises the multicast tree, the stat-ack epoch
     machinery and per-site recovery at a scale past the paper's 50-site
     projection; wall-clock stays comfortably in test range. *)
  let cfg =
    { Lbrm.Config.default with k_ackers = 20; epoch_interval = 10. }
  in
  let d =
    Scenario.standard ~cfg ~seed:101 ~sites:100 ~receivers_per_site:2
      ~initial_estimate:100.
      ~tail_loss:(fun site ->
        if site mod 7 = 3 then Loss.bernoulli 0.1 else Loss.none)
      ()
  in
  Scenario.drive_periodic d ~interval:1. ~count:20 ();
  Scenario.run d ~until:90.;
  checki "200 receivers all complete" 0 (Scenario.total_missing d);
  let acks = Trace.get (Scenario.trace d) "sent.stat_ack" in
  checkb
    (Printf.sprintf "ACK load stays ~k per packet (%d for 20 packets)" acks)
    true
    (acks < 20 * 40)

let chaos_random_soak () =
  (* A seeded random schedule of logger/receiver crashes and transient
     site partitions, applied through the engine: after quiescence every
     surviving receiver is gap-free, nothing was delivered twice within
     one incarnation, and no recovery was abandoned. *)
  let module Chaos = Lbrm_run.Chaos in
  let o = Chaos.random_chaos ~seed:7 () in
  checkb
    (Printf.sprintf "invariants hold (%s)"
       (String.concat "; " o.Chaos.violations))
    true (Chaos.passed o);
  checkb "packets actually flowed" true (o.Chaos.delivered > 0)

let chaos_same_seed_same_trace () =
  (* Faults ride the same deterministic engine as everything else: two
     runs with equal seeds must produce byte-identical metric traces
     (the digest canonicalizes every counter and every sample), and a
     different seed must not. *)
  let module Chaos = Lbrm_run.Chaos in
  let a = Chaos.random_chaos ~seed:5 () in
  let b = Chaos.random_chaos ~seed:5 () in
  Alcotest.(check string)
    "same seed, byte-identical metrics" a.Chaos.digest b.Chaos.digest;
  let c = Chaos.random_chaos ~seed:6 () in
  checkb "different seed, different trace" true
    (a.Chaos.digest <> c.Chaos.digest)

let chaos_same_seed_same_jsonl () =
  (* The typed trace stream inherits the same determinism guarantee:
     equal seeds produce byte-identical JSONL exports of the merged
     per-node event stream, down to float formatting. *)
  let module Chaos = Lbrm_run.Chaos in
  let jsonl o = Lbrm.Trace.jsonl_of_records o.Chaos.events in
  let a = Chaos.primary_crash ~seed:11 () in
  let b = Chaos.primary_crash ~seed:11 () in
  Alcotest.(check string) "same seed, byte-identical JSONL" (jsonl a) (jsonl b);
  checkb "trace is non-trivial" true (List.length a.Chaos.events > 100);
  (* primary_crash runs loss-free, so its typed stream is seed-invariant;
     the lossy secondary_crash scenario shows seed sensitivity. *)
  let c = Chaos.secondary_crash ~seed:11 () in
  let d = Chaos.secondary_crash ~seed:12 () in
  checkb "different seed, different JSONL" true (jsonl c <> jsonl d)

let () =
  Alcotest.run "soak"
    [
      ( "soak",
        [
          qtest prop_random_deployments_converge;
          Alcotest.test_case "jitter reordering tolerated" `Quick
            jitter_reordering_tolerated;
          Alcotest.test_case "combined faults" `Quick combined_faults_soak;
          Alcotest.test_case "long idle stability" `Quick long_idle_stability;
          Alcotest.test_case "100-site scale" `Quick many_sites_scale;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "seeded random fault schedule" `Quick
            chaos_random_soak;
          Alcotest.test_case "same seed, same metric trace" `Quick
            chaos_same_seed_same_trace;
          Alcotest.test_case "same seed, byte-identical trace JSONL" `Quick
            chaos_same_seed_same_jsonl;
        ] );
    ]
