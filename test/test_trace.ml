(* The observability plane: typed trace events, sinks, deterministic
   JSONL rendering, causal timeline reconstruction, and the chaos
   invariants re-expressed as trace queries. *)

module T = Lbrm.Trace
module Tl = Lbrm.Timeline
module Chaos = Lbrm_run.Chaos
module Scenario = Lbrm_run.Scenario

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string
let bool = Alcotest.bool

(* ---- encoding: fixed field order, exact bytes ------------------------- *)

let jsonl_goldens () =
  let r at node ev = { T.at; node; ev } in
  check string "send"
    {|{"at":1.5,"node":7,"ev":"send","seq":42}|}
    (T.to_jsonl (r 1.5 7 (T.Send { seq = 42 })));
  check string "deliver"
    {|{"at":0.25,"node":3,"ev":"deliver","seq":9,"recovered":true}|}
    (T.to_jsonl (r 0.25 3 (T.Deliver { seq = 9; recovered = true })));
  check string "nack"
    {|{"at":2,"node":12,"ev":"nack_sent","dest":4,"level":1,"seqs":[5,6]}|}
    (T.to_jsonl (r 2.0 12 (T.Nack_sent { dest = 4; level = 1; seqs = [ 5; 6 ] })));
  check string "retrans unicast carries dest"
    {|{"at":3,"node":4,"ev":"retrans","seq":5,"mode":"unicast","dest":12}|}
    (T.to_jsonl (r 3.0 4 (T.Retrans { seq = 5; mode = T.R_unicast 12 })));
  check string "retrans site mcast"
    {|{"at":3,"node":4,"ev":"retrans","seq":5,"mode":"site_mcast"}|}
    (T.to_jsonl (r 3.0 4 (T.Retrans { seq = 5; mode = T.R_site_mcast })));
  check string "promotion"
    {|{"at":6.5,"node":1,"ev":"failover","step":"promoted","primary":9,"redeposits":3}|}
    (T.to_jsonl
       (r 6.5 1 (T.Failover_step (T.F_promoted { primary = 9; redeposits = 3 }))));
  (* %.17g floats: shortest-exact for representable values, full
     precision otherwise — the determinism contract. *)
  check string "float precision"
    {|{"at":0.10000000000000001,"node":0,"ev":"silence","elapsed":4.2000000000000002}|}
    (T.to_jsonl (r 0.1 0 (T.Silence { elapsed = 4.2 })))

(* ---- sinks ------------------------------------------------------------ *)

let null_sink_captures_nothing () =
  let sink = T.null () in
  check bool "disabled" false (T.is_on sink);
  (* emit through a disabled sink must be a no-op, not an error *)
  T.emit sink ~at:1.0 ~node:1 (T.Send { seq = 1 })

let collector_preserves_order () =
  let c = T.Collector.create () in
  let sink = T.Collector.sink c in
  check bool "enabled" true (T.is_on sink);
  for i = 1 to 5 do
    T.emit sink ~at:(float_of_int i) ~node:0 (T.Send { seq = i })
  done;
  check int "count" 5 (T.Collector.count c);
  check (Alcotest.list int) "emission order"
    [ 1; 2; 3; 4; 5 ]
    (List.map
       (fun r -> match r.T.ev with T.Send { seq } -> seq | _ -> -1)
       (T.Collector.records c))

let ring_wraps_and_counts_drops () =
  let ring = T.Ring.create ~capacity:4 in
  let sink = T.Ring.sink ring in
  for i = 1 to 10 do
    T.emit sink ~at:(float_of_int i) ~node:0 (T.Send { seq = i })
  done;
  check int "pushed" 10 (T.Ring.pushed ring);
  check int "dropped" 6 (T.Ring.dropped ring);
  check (Alcotest.list int) "last capacity records, oldest first"
    [ 7; 8; 9; 10 ]
    (List.map
       (fun r -> match r.T.ev with T.Send { seq } -> seq | _ -> -1)
       (T.Ring.records ring));
  (* under capacity: no wrap, no drops *)
  let small = T.Ring.create ~capacity:8 in
  let sink = T.Ring.sink small in
  for i = 1 to 3 do
    T.emit sink ~at:(float_of_int i) ~node:0 (T.Send { seq = i })
  done;
  check int "no drops" 0 (T.Ring.dropped small);
  check int "records" 3 (List.length (T.Ring.records small))

(* ---- timeline reconstruction on a synthetic trace --------------------- *)

let timeline_synthetic () =
  let r at node ev = { T.at; node; ev } in
  let records =
    [
      r 1.0 0 (T.Send { seq = 1 });
      r 1.1 9 (T.Gap_detected { seqs = [ 1 ] });
      r 1.2 9 (T.Nack_sent { dest = 5; level = 0; seqs = [ 1 ] });
      r 1.3 5 (T.Retrans { seq = 1; mode = T.R_unicast 9 });
      r 1.4 9 (T.Deliver { seq = 1; recovered = true });
      (* a second receiver loses the same seq, repaired by site mcast *)
      r 1.1 8 (T.Gap_detected { seqs = [ 2 ] });
      r 1.25 8 (T.Nack_sent { dest = 5; level = 0; seqs = [ 2 ] });
      r 1.35 5 (T.Retrans { seq = 2; mode = T.R_site_mcast });
      r 1.45 8 (T.Deliver { seq = 2; recovered = true });
      (* abandoned pursuit *)
      r 2.0 7 (T.Gap_detected { seqs = [ 3 ] });
      r 9.0 7 (T.Gave_up { seq = 3 });
    ]
  in
  let losses = Tl.build records in
  check int "three losses" 3 (List.length losses);
  let by_receiver node =
    List.find (fun (l : Tl.loss) -> l.Tl.receiver = node) losses
  in
  let l9 = by_receiver 9 in
  check bool "recovered" true (Tl.recovered l9);
  check (Alcotest.option (Alcotest.float 1e-9)) "latency"
    (Some 0.3) (Tl.latency l9);
  (match l9.Tl.repair with
  | Some { Tl.mode = T.R_unicast 9; from = 5; _ } -> ()
  | _ -> Alcotest.fail "expected unicast repair from logger 5");
  let l8 = by_receiver 8 in
  (match l8.Tl.repair with
  | Some { Tl.mode = T.R_site_mcast; _ } -> ()
  | _ -> Alcotest.fail "expected site-mcast repair");
  let l7 = by_receiver 7 in
  check bool "abandoned" true (Tl.abandoned l7);
  check bool "abandoned not recovered" false (Tl.recovered l7)

(* a unicast retransmission to another receiver must not be claimed *)
let timeline_unicast_addressing () =
  let r at node ev = { T.at; node; ev } in
  let records =
    [
      r 1.0 9 (T.Gap_detected { seqs = [ 1 ] });
      r 1.2 5 (T.Retrans { seq = 1; mode = T.R_unicast 8 });
      r 1.4 9 (T.Deliver { seq = 1; recovered = true });
    ]
  in
  match Tl.build records with
  | [ l ] ->
      check bool "recovered" true (Tl.recovered l);
      check bool "no repair attributed (unicast was for node 8)" true
        (l.Tl.repair = None)
  | _ -> Alcotest.fail "expected one loss"

(* ---- end-to-end: lossy run reconstructs full causal chains ------------ *)

let lossy_run () =
  let collector = T.Collector.create () in
  let d =
    Scenario.standard ~seed:7 ~initial_estimate:24.
      ~tail_loss:(fun _ -> Lbrm_sim.Loss.bernoulli 0.08)
      ~sink:(T.Collector.sink collector)
      ~sites:8 ~receivers_per_site:3 ()
  in
  Scenario.drive_periodic d ~interval:0.1 ~count:30 ();
  Scenario.run d ~until:30.;
  T.Collector.records collector

let timeline_end_to_end () =
  let events = lossy_run () in
  let losses = Tl.build events in
  check bool "losses occurred" true (List.length losses > 0);
  List.iter
    (fun (l : Tl.loss) ->
      (* every pursuit resolved within the horizon *)
      check bool "closed" true (Tl.recovered l || Tl.abandoned l);
      if Tl.recovered l then begin
        check bool "delivery after detection" true
          (match l.Tl.delivered_at with
          | Some at -> at >= l.Tl.detected_at
          | None -> false);
        (* a recovered loss with an attributed repair must show a causal
           chain: detection -> (nack) -> retransmission -> delivery.  A
           multicast repair may precede this receiver's own NACK (it can
           be triggered by a peer's), but a unicast repair addressed to
           this receiver answers its NACK and must follow it. *)
        match (l.Tl.repair, l.Tl.first_nack_at) with
        | Some rep, Some nack_at ->
            check bool "nack after detection" true (nack_at >= l.Tl.detected_at);
            check bool "retrans after detection" true
              (rep.Tl.at >= l.Tl.detected_at);
            (match rep.Tl.mode with
            | T.R_unicast dest when dest = l.Tl.receiver ->
                check bool "unicast repair after nack" true (rep.Tl.at >= nack_at)
            | _ -> ())
        | _ -> ()
      end)
    losses;
  (* the macro numbers agree with the receivers' own counters *)
  let recovered_losses = List.length (List.filter Tl.recovered losses) in
  check bool "some recoveries traced" true (recovered_losses > 0)

(* ---- chaos invariants as trace queries -------------------------------- *)

let primary_crash_exactly_one_promote () =
  let o = Chaos.primary_crash () in
  check (Alcotest.list string) "no violations" [] o.Chaos.violations;
  (* the acceptance query: exactly one Promote in the merged trace *)
  check int "exactly one Promote" 1
    (List.length (T.Query.promotions o.Chaos.events));
  (* and the losses in the trace all close *)
  let losses = Tl.build o.Chaos.events in
  List.iter
    (fun (l : Tl.loss) ->
      check bool "loss closed" true (Tl.recovered l || Tl.abandoned l);
      check bool "no abandoned recovery" false (Tl.abandoned l))
    losses;
  (* the F_suspected step precedes the promotion *)
  let first_suspect =
    T.Query.find_first
      (fun r ->
        match r.T.ev with
        | T.Failover_step T.F_suspected -> true
        | _ -> false)
      o.Chaos.events
  in
  match (first_suspect, T.Query.promotions o.Chaos.events) with
  | Some s, [ p ] -> check bool "suspected before promoted" true (s.T.at <= p.T.at)
  | _ -> Alcotest.fail "missing suspicion or promotion records"

let secondary_crash_rejoin_query () =
  let o = Chaos.secondary_crash () in
  check (Alcotest.list string) "no violations" [] o.Chaos.violations;
  check bool "adoptions recorded" true
    (T.Query.rediscovery_adoptions o.Chaos.events <> [])

(* ---- queries over synthetic streams ----------------------------------- *)

let query_helpers () =
  let r at node ev = { T.at; node; ev } in
  let records =
    [
      r 1.0 1 (T.Send { seq = 1 });
      r 2.0 2 (T.Gave_up { seq = 4 });
      r 3.0 1 (T.Send { seq = 2 });
    ]
  in
  check int "count" 2
    (T.Query.count
       (fun r -> match r.T.ev with T.Send _ -> true | _ -> false)
       records);
  check int "by_node" 2 (List.length (T.Query.by_node 1 records));
  check int "since" 2 (List.length (T.Query.since 2.0 records));
  check int "gave_up" 1 (List.length (T.Query.gave_up records))

let () =
  Alcotest.run "trace"
    [
      ( "encoding",
        [
          Alcotest.test_case "jsonl goldens" `Quick jsonl_goldens;
          Alcotest.test_case "query helpers" `Quick query_helpers;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "null sink" `Quick null_sink_captures_nothing;
          Alcotest.test_case "collector order" `Quick collector_preserves_order;
          Alcotest.test_case "ring wrap" `Quick ring_wraps_and_counts_drops;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "synthetic chains" `Quick timeline_synthetic;
          Alcotest.test_case "unicast addressing" `Quick
            timeline_unicast_addressing;
          Alcotest.test_case "lossy end-to-end" `Slow timeline_end_to_end;
        ] );
      ( "chaos queries",
        [
          Alcotest.test_case "exactly one Promote" `Slow
            primary_crash_exactly_one_promote;
          Alcotest.test_case "rejoin adoptions" `Slow
            secondary_crash_rejoin_query;
        ] );
    ]
