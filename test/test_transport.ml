(* Unit tests for the production transport's parts: the Peer_manager
   liveness state machine, the Buf_pool free-list (qcheck churn), and
   Sockmsg batch roundtrips over real loopback sockets (skipped where
   the environment provides none). *)

module P = Lbrm_run.Peer_manager
module Buf_pool = Lbrm_run.Buf_pool
module Sockmsg = Lbrm_run.Sockmsg

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let qtest = QCheck_alcotest.to_alcotest

let state_t =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (P.state_label s))
    (fun a b -> a == b)

let check_state = Alcotest.check (Alcotest.option state_t)

(* --- Peer_manager ------------------------------------------------------ *)

let pm_lifecycle () =
  let pm = P.create ~suspect_after:3.0 ~dead_after:30.0 () in
  P.ensure pm ~port:9001 ~now:0.0;
  check_state "registered" (Some P.Connecting) (P.state pm ~port:9001);
  P.note_recv pm ~port:9001 ~now:0.5;
  check_state "rx activates" (Some P.Active) (P.state pm ~port:9001);
  P.tick pm ~now:1.0;
  check_state "short silence stays active" (Some P.Active)
    (P.state pm ~port:9001);
  P.tick pm ~now:4.0;
  check_state "silence > suspect_after" (Some P.Suspect)
    (P.state pm ~port:9001);
  P.tick pm ~now:31.0;
  check_state "silence > dead_after" (Some P.Dead) (P.state pm ~port:9001);
  P.note_recv pm ~port:9001 ~now:32.0;
  check_state "dead peer revives on rx" (Some P.Active)
    (P.state pm ~port:9001)

let pm_connecting_ages () =
  (* A peer that never spoke still decays: Connecting -> Suspect -> Dead
     on the same silence clock. *)
  let pm = P.create ~suspect_after:3.0 ~dead_after:30.0 () in
  P.ensure pm ~port:9002 ~now:0.0;
  P.tick pm ~now:4.0;
  check_state "silent connecting peer" (Some P.Suspect)
    (P.state pm ~port:9002);
  P.tick pm ~now:31.0;
  check_state "then dead" (Some P.Dead) (P.state pm ~port:9002)

let pm_transitions_observed () =
  let log = ref [] in
  let pm =
    P.create ~suspect_after:3.0 ~dead_after:30.0
      ~on_transition:(fun ~port ~before ~after ->
        log := (port, P.state_label before, P.state_label after) :: !log)
      ()
  in
  P.ensure pm ~port:7 ~now:0.0;
  P.note_recv pm ~port:7 ~now:0.0;
  P.tick pm ~now:4.0;
  P.tick pm ~now:31.0;
  P.note_recv pm ~port:7 ~now:32.0;
  Alcotest.(check (list (triple int string string)))
    "full causal chain"
    [
      (7, "connecting", "active");
      (7, "active", "suspect");
      (7, "suspect", "dead");
      (7, "dead", "active");
    ]
    (List.rev !log)

let pm_sends_never_gate () =
  (* Receiver-reliable stance: outgoing traffic is bookkeeping only and
     never refreshes liveness. *)
  let pm = P.create ~suspect_after:3.0 ~dead_after:30.0 () in
  P.note_recv pm ~port:5 ~now:0.0;
  P.note_sent pm ~port:5 ~now:2.9;
  P.note_sent pm ~port:5 ~now:3.5;
  P.tick pm ~now:4.0;
  check_state "sends do not keep a peer alive" (Some P.Suspect)
    (P.state pm ~port:5);
  Alcotest.(check (option (pair int int)))
    "traffic counted" (Some (2, 1))
    (P.traffic pm ~port:5)

let pm_fanout_skips_dead_only () =
  let pm = P.create ~suspect_after:1.0 ~dead_after:5.0 () in
  List.iter (fun p -> P.join pm ~group:1 ~port:p ~now:0.0) [ 13; 11; 12 ];
  P.note_recv pm ~port:11 ~now:4.8 (* stays active *);
  P.note_recv pm ~port:12 ~now:3.0 (* suspect at sweep *);
  (* 13 never speaks: silent since 0.0 -> dead at 6.0 *)
  P.tick pm ~now:6.0;
  check_state "suspect keeps receiving" (Some P.Suspect) (P.state pm ~port:12);
  check_state "silent member died" (Some P.Dead) (P.state pm ~port:13);
  let walked = ref [] in
  P.iter_live_members pm ~group:1 ~except:0 (fun p -> walked := p :: !walked);
  Alcotest.(check (list int))
    "dead skipped, ascending order" [ 11; 12 ] (List.rev !walked);
  let walked = ref [] in
  P.iter_live_members pm ~group:1 ~except:12 (fun p -> walked := p :: !walked);
  Alcotest.(check (list int)) "except honored" [ 11 ] (List.rev !walked);
  checki "group_size counts every state" 3 (P.group_size pm ~group:1);
  checkb "dead member still a member" true (P.member pm ~group:1 ~port:13);
  P.leave pm ~group:1 ~port:11;
  checkb "leave removes" false (P.member pm ~group:1 ~port:11);
  checki "group shrinks" 2 (P.group_size pm ~group:1)

let pm_counts () =
  let pm = P.create ~suspect_after:1.0 ~dead_after:5.0 () in
  P.ensure pm ~port:1 ~now:10.0;
  P.note_recv pm ~port:2 ~now:9.9;
  P.note_recv pm ~port:3 ~now:8.0;
  P.note_recv pm ~port:4 ~now:1.0;
  P.tick pm ~now:10.0;
  let connecting, active, suspect, dead = P.counts pm in
  checki "connecting" 1 connecting;
  checki "active" 1 active;
  checki "suspect" 1 suspect;
  checki "dead" 1 dead;
  checki "known" 4 (P.known pm)

(* --- Buf_pool ----------------------------------------------------------- *)

let pool_slots_distinct () =
  let pool = Buf_pool.create ~slots:8 ~slot_size:128 () in
  let bufs = List.init 8 (fun _ -> Buf_pool.lease pool) in
  checki "pool drained" 0 (Buf_pool.free_count pool);
  List.iter
    (fun b ->
      checkb "pooled" true (Buf_pool.pooled b);
      checkb "in region" true (b.Buf_pool.bytes == Buf_pool.region pool);
      checki "slot-aligned offset" 0 (b.Buf_pool.off mod 128))
    bufs;
  let offs = List.map (fun b -> b.Buf_pool.off) bufs in
  checki "distinct offsets" 8 (List.length (List.sort_uniq Int.compare offs));
  List.iter (Buf_pool.release pool) bufs;
  checki "all returned" 8 (Buf_pool.free_count pool);
  checki "outstanding zero" 0 (Buf_pool.outstanding pool);
  checki "max outstanding" 8 (Buf_pool.max_outstanding pool)

let pool_exhaustion_fallback () =
  let pool = Buf_pool.create ~slots:2 ~slot_size:64 () in
  let a = Buf_pool.lease pool and b = Buf_pool.lease pool in
  let c = Buf_pool.lease pool in
  checkb "fallback is not pooled" false (Buf_pool.pooled c);
  checki "fallback marked" (-1) c.Buf_pool.slot;
  checki "fallback counted" 1 (Buf_pool.fallback_allocs pool);
  checki "fallback capacity matches slots" 64 c.Buf_pool.cap;
  Buf_pool.release pool c;
  checki "fallback release is a no-op" 0 (Buf_pool.free_count pool);
  Buf_pool.release pool a;
  Buf_pool.release pool b;
  checki "pool intact after fallback churn" 2 (Buf_pool.free_count pool)

let pool_double_release_refused () =
  let pool = Buf_pool.create ~slots:4 ~slot_size:64 () in
  let a = Buf_pool.lease pool in
  Buf_pool.release pool a;
  Buf_pool.release pool a;
  checki "double release counted" 1 (Buf_pool.double_releases pool);
  checki "free list not corrupted" 4 (Buf_pool.free_count pool);
  (* The same slot can still cycle normally afterwards. *)
  let b = Buf_pool.lease pool in
  checkb "slot reusable" true (Buf_pool.pooled b);
  Buf_pool.release pool b;
  checki "still intact" 4 (Buf_pool.free_count pool)

(* Random lease/release churn: whatever the interleaving, no slot is
   ever leased twice concurrently, and returning everything restores the
   full free list with zero double-release complaints. *)
let pool_churn_qcheck =
  QCheck.Test.make ~count:200 ~name:"buf_pool: churn preserves invariants"
    QCheck.(list (int_range 0 5))
    (fun ops ->
      let slots = 6 in
      let pool = Buf_pool.create ~slots ~slot_size:32 () in
      let held = ref [] in
      let live_offsets () =
        List.filter_map
          (fun b ->
            if Buf_pool.pooled b then Some b.Buf_pool.off else None)
          !held
      in
      List.iter
        (fun op ->
          if op mod 2 = 0 then held := Buf_pool.lease pool :: !held
          else
            match !held with
            | [] -> ()
            | b :: rest ->
                Buf_pool.release pool b;
                held := rest;
          let offs = live_offsets () in
          if
            List.length offs
            <> List.length (List.sort_uniq Int.compare offs)
          then QCheck.Test.fail_report "slot leased twice concurrently";
          if Buf_pool.outstanding pool > slots then
            QCheck.Test.fail_report "outstanding exceeds pool size")
        ops;
      List.iter (Buf_pool.release pool) !held;
      Buf_pool.free_count pool = slots
      && Buf_pool.outstanding pool = 0
      && Buf_pool.double_releases pool = 0)

(* --- Sockmsg over real sockets ------------------------------------------ *)

let make_socket () =
  let s = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.set_nonblock s;
  s

let port_of s =
  match Unix.getsockname s with
  | Unix.ADDR_INET (_, p) -> p
  | Unix.ADDR_UNIX _ -> assert false

let sockets_available =
  lazy
    (match make_socket () with
    | s ->
        Unix.close s;
        true
    | exception Unix.Unix_error _ -> false)

let require_sockets () =
  if not (Lazy.force sockets_available) then
    Alcotest.skip () (* no loopback sockets in this sandbox *)

let loopback_ip =
  match Sockmsg.ipv4_of_string "127.0.0.1" with
  | Some ip -> ip
  | None -> assert false

(* Stage [count] datagrams of the given lengths in a region, ship them
   through [send_batch], read everything back with [recv_batch] and
   check length, source port and byte-for-byte payload of each. *)
let roundtrip ~use_mmsg ~use_gso lens_in =
  let slot = 256 in
  let count = Array.length lens_in in
  let tx = make_socket () and rx = make_socket () in
  let dst = port_of rx and src = port_of tx in
  let region = Bytes.create (2 * count * slot) in
  let tx_offs = Array.init count (fun i -> i * slot) in
  let rx_offs = Array.init count (fun i -> (count + i) * slot) in
  let tx_ports = Array.make count dst in
  let rx_lens = Array.make count 0 and rx_ports = Array.make count 0 in
  Array.iteri
    (fun i len ->
      Bytes.fill region tx_offs.(i) len (Char.chr (0x41 + (i mod 26))))
    lens_in;
  Sockmsg.send_batch ~use_mmsg ~use_gso tx region ~offs:tx_offs ~lens:lens_in
    ~ports:tx_ports ~count ~ip:loopback_ip ~sockaddr:(fun p ->
      Unix.ADDR_INET (Unix.inet_addr_loopback, p));
  let got = ref 0 and spins = ref 0 in
  while !got < count && !spins < 100 do
    (match Unix.select [ rx ] [] [] 0.2 with
    | [], _, _ -> incr spins
    | _ -> ());
    let scratch_offs = Array.init (count - !got) (fun i -> rx_offs.(!got + i)) in
    let scratch_lens = Array.make (count - !got) 0 in
    let scratch_ports = Array.make (count - !got) 0 in
    let n =
      Sockmsg.recv_batch ~use_mmsg rx region ~offs:scratch_offs ~slot
        ~count:(count - !got) ~lens:scratch_lens ~ports:scratch_ports
    in
    for i = 0 to n - 1 do
      rx_lens.(!got + i) <- scratch_lens.(i);
      rx_ports.(!got + i) <- scratch_ports.(i)
    done;
    got := !got + n
  done;
  Unix.close tx;
  Unix.close rx;
  checki "all datagrams arrived" count !got;
  for i = 0 to count - 1 do
    checki "length preserved" lens_in.(i) rx_lens.(i);
    checki "source port" src rx_ports.(i);
    Alcotest.(check string)
      "payload intact"
      (Bytes.sub_string region tx_offs.(i) lens_in.(i))
      (Bytes.sub_string region rx_offs.(i) rx_lens.(i))
  done

let sockmsg_mmsg_roundtrip () =
  require_sockets ();
  (* Mixed lengths force the sendmmsg tier even with GSO enabled. *)
  roundtrip ~use_mmsg:Sockmsg.mmsg_available ~use_gso:true
    [| 17; 141; 99; 1; 255; 64; 200; 33 |]

let sockmsg_fallback_roundtrip () =
  require_sockets ();
  roundtrip ~use_mmsg:false ~use_gso:false [| 10; 20; 30; 40 |]

let sockmsg_gso_roundtrip () =
  require_sockets ();
  if not (Sockmsg.mmsg_available && Sockmsg.gso_available ()) then
    Alcotest.skip ();
  let gso0, _, _ = Sockmsg.tx_tiers () in
  (* Uniform run with a shorter final segment: one GSO super-datagram
     must come back out of the kernel as 8 distinct datagrams. *)
  roundtrip ~use_mmsg:true ~use_gso:true [| 120; 120; 120; 120; 120; 120; 120; 48 |];
  let gso1, _, _ = Sockmsg.tx_tiers () in
  checki "run took the GSO tier" 8 (gso1 - gso0)

let sockmsg_monotonic_clock () =
  let prev = ref (Sockmsg.monotonic_now ()) in
  for _ = 1 to 1000 do
    let t = Sockmsg.monotonic_now () in
    checkb "non-decreasing" true (t >= !prev);
    prev := t
  done

(* --- Gc cross-check for the hot-path manifest --------------------------- *)

(* The `zero` tag in ../lint.hotpaths claims a function's steady-state
   path allocates nothing; the [hot-alloc] pass proves the absence of
   allocation *sites* statically, and this test measures the claim
   dynamically with Gc.allocated_bytes.  The measurement table below is
   keyed by manifest function name and every zero-tagged entry must
   have a row, so tagging a new function in the manifest forces writing
   its measurement here. *)

let manifest_zero_entries () =
  let ic = open_in "../lint.hotpaths" in
  let rec go acc =
    match input_line ic with
    | ln ->
        let ln =
          match String.index_opt ln '#' with
          | Some i -> String.sub ln 0 i
          | None -> ln
        in
        let acc =
          match
            String.split_on_char ' ' ln
            |> List.concat_map (String.split_on_char '\t')
            |> List.filter (fun s -> s <> "")
          with
          | [ fn; _file; "zero" ] -> fn :: acc
          | _ -> acc
        in
        go acc
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

module Heap = Lbrm_util.Heap
module Metrics = Lbrm_util.Metrics

let iters = 10_000

(* Each measurement runs the op [iters] times in steady state (pools
   warmed by the setup) and returns the words allocated over the run.
   One measurement may vouch for several manifest entries when the ops
   only make sense as a cycle (lease/release, put/pop). *)
let measurements : (string list * (unit -> float)) list =
  [
    ( [ "Buf_pool.lease"; "Buf_pool.release" ],
      fun () ->
        let pool = Buf_pool.create ~slots:4 ~slot_size:2048 () in
        for _ = 1 to 100 do
          Buf_pool.release pool (Buf_pool.lease pool)
        done;
        let before = Gc.allocated_bytes () in
        for _ = 1 to iters do
          Buf_pool.release pool (Buf_pool.lease pool)
        done;
        (Gc.allocated_bytes () -. before) /. float_of_int (Sys.word_size / 8) );
    ( [ "Heap.put" ],
      fun () ->
        (* Constant priority: float_of_int in the loop would box a
           float per iteration and charge the harness's allocation to
           the heap.  Ties break FIFO, so the cycle still exercises the
           full put/pop path. *)
        let h = Heap.create ~dummy:(-1) in
        for i = 1 to 100 do
          Heap.put h ~prio:1.0 i;
          ignore (Heap.pop_exn h)
        done;
        let before = Gc.allocated_bytes () in
        for i = 1 to iters do
          Heap.put h ~prio:1.0 i;
          ignore (Heap.pop_exn h)
        done;
        (Gc.allocated_bytes () -. before) /. float_of_int (Sys.word_size / 8) );
    ( [
        "Replication.member_index";
        "Replication.note_floor";
        "Replication.insert_desc";
        "Replication.sort_floors";
      ],
      fun () ->
        (* One quorum-ack worth of floor bookkeeping per iteration:
           note_floor runs member_index, sort_floors runs insert_desc. *)
        let cfg =
          { Lbrm.Config.default with replication = Lbrm.Config.R_quorum }
        in
        let rep =
          Lbrm.Replication.create cfg ~self:1 ~primary:2 ~replicas:[ 3; 4; 5 ]
            ~retained_above:(fun _ -> 0)
            ()
        in
        let step floor =
          Lbrm.Replication.Hot.note_floor rep ~member:4 ~floor;
          Lbrm.Replication.Hot.sort_floors rep
        in
        for i = 1 to 100 do
          step i
        done;
        let before = Gc.allocated_bytes () in
        for i = 1 to iters do
          step i
        done;
        (Gc.allocated_bytes () -. before) /. float_of_int (Sys.word_size / 8) );
    ( [ "Archive.locate" ],
      fun () ->
        (* The disk tier's in-memory index probe: one Hashtbl.find per
           tiered retransmission lookup, hit and miss both via the
           preallocated Not_found path.  Seqs cycle past the appended
           range so both outcomes are measured. *)
        let a =
          Result.get_ok
            (Lbrm.Archive.open_ ~fs:(Lbrm.Archive.in_memory ())
               "transport-hot.log")
        in
        for seq = 1 to 64 do
          Lbrm.Archive.append a ~seq ~epoch:0 ~payload:"x"
        done;
        let probe i = ignore (Lbrm.Archive.locate a ((i mod 80) + 1)) in
        for i = 1 to 100 do
          probe i
        done;
        let before = Gc.allocated_bytes () in
        for i = 1 to iters do
          probe i
        done;
        (Gc.allocated_bytes () -. before) /. float_of_int (Sys.word_size / 8) );
    ( [ "Metrics.incr"; "Metrics.add" ],
      fun () ->
        let m = Metrics.create () in
        let c = Metrics.counter m "transport.test.hot" in
        for _ = 1 to 100 do
          Metrics.incr c;
          Metrics.add c 2
        done;
        let before = Gc.allocated_bytes () in
        for _ = 1 to iters do
          Metrics.incr c;
          Metrics.add c 2
        done;
        (Gc.allocated_bytes () -. before) /. float_of_int (Sys.word_size / 8) );
  ]

let manifest_zero_allocs () =
  let entries = manifest_zero_entries () in
  checkb "manifest has zero-tagged entries" true (entries <> []);
  List.iter
    (fun fn ->
      match List.find_opt (fun (fns, _) -> List.mem fn fns) measurements with
      | None ->
          Alcotest.fail
            (Printf.sprintf
               "zero-tagged manifest entry %s has no Gc measurement; add one \
                to test_transport.ml"
               fn)
      | Some (_, measure) ->
          let words = measure () in
          let per_op = words /. float_of_int iters in
          if per_op >= 0.02 then
            Alcotest.fail
              (Printf.sprintf
                 "%s allocates %.4f words/op in steady state; the manifest \
                  tags it zero"
                 fn per_op))
    entries

let () =
  Alcotest.run "transport"
    [
      ( "peer_manager",
        [
          Alcotest.test_case "lifecycle" `Quick pm_lifecycle;
          Alcotest.test_case "connecting ages out" `Quick pm_connecting_ages;
          Alcotest.test_case "transitions observed" `Quick
            pm_transitions_observed;
          Alcotest.test_case "sends never gate liveness" `Quick
            pm_sends_never_gate;
          Alcotest.test_case "fan-out skips dead only" `Quick
            pm_fanout_skips_dead_only;
          Alcotest.test_case "counts" `Quick pm_counts;
        ] );
      ( "buf_pool",
        [
          Alcotest.test_case "slots distinct" `Quick pool_slots_distinct;
          Alcotest.test_case "exhaustion falls back" `Quick
            pool_exhaustion_fallback;
          Alcotest.test_case "double release refused" `Quick
            pool_double_release_refused;
          qtest pool_churn_qcheck;
        ] );
      ( "sockmsg",
        [
          Alcotest.test_case "mmsg roundtrip" `Quick sockmsg_mmsg_roundtrip;
          Alcotest.test_case "fallback roundtrip" `Quick
            sockmsg_fallback_roundtrip;
          Alcotest.test_case "gso roundtrip" `Quick sockmsg_gso_roundtrip;
          Alcotest.test_case "monotonic clock" `Quick sockmsg_monotonic_clock;
        ] );
      ( "hot_paths",
        [
          Alcotest.test_case "zero-tagged manifest entries allocate nothing"
            `Quick manifest_zero_allocs;
        ] );
    ]
