(* The real-socket runtime: LBRM agents over loopback UDP datagrams.
   These tests bind actual sockets and run for wall-clock fractions of a
   second; loss is injected at the send hook (loopback never drops). *)

module U = Lbrm_run.Udp_runtime
module H = Lbrm_run.Handlers

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* Sandboxes without loopback sockets skip (not fail) every test here:
   socket availability is an environment fact, not a regression. *)
let sockets_available =
  lazy
    (match Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 with
    | s -> (
        match Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) with
        | () ->
            Unix.close s;
            true
        | exception Unix.Unix_error _ ->
            Unix.close s;
            false)
    | exception Unix.Unix_error _ -> false)

let require_sockets () =
  if not (Lazy.force sockets_available) then Alcotest.skip ()

(* Small heartbeat intervals so recovery fits in a short wall-clock run. *)
let cfg =
  {
    Lbrm.Config.default with
    stat_ack_enabled = false;
    h_min = 0.05;
    nack_delay = 0.01;
    nack_timeout = 0.15;
    deposit_timeout = 0.2;
  }

type session = {
  rt : U.t;
  source : Lbrm.Source.t;
  src_port : int;
  receivers : (Lbrm.Receiver.t * int) list;
}

let make_session ?(cfg = cfg) ?use_mmsg ?suspect_after ?dead_after ~base_port
    ~loss ~receiver_count () =
  let rt = U.create ~loss ~seed:3 ?use_mmsg ?suspect_after ?dead_after () in
  let src_port = base_port in
  let primary_port = base_port + 1 in
  let secondary_port = base_port + 2 in
  let source = Lbrm.Source.create cfg ~self:src_port ~primary:primary_port () in
  let primary =
    Lbrm.Logger.create cfg ~self:primary_port ~source:src_port
      ~rng:(Lbrm_util.Rng.create ~seed:1) ()
  in
  let secondary =
    Lbrm.Logger.create cfg ~self:secondary_port ~source:src_port
      ~parent:primary_port
      ~rng:(Lbrm_util.Rng.create ~seed:2) ()
  in
  U.add_agent rt ~port:src_port (H.of_source source);
  U.add_agent rt ~port:primary_port (H.of_logger primary);
  U.add_agent rt ~port:secondary_port (H.of_logger secondary);
  let receivers =
    List.init receiver_count (fun i ->
        let port = base_port + 3 + i in
        let r =
          Lbrm.Receiver.create cfg ~self:port ~source:src_port
            ~loggers:[ secondary_port; primary_port ]
        in
        U.add_agent rt ~port (H.of_receiver r);
        (r, port))
  in
  let group = cfg.group in
  U.join rt ~group ~port:primary_port;
  U.join rt ~group ~port:secondary_port;
  List.iter (fun (_, p) -> U.join rt ~group ~port:p) receivers;
  U.perform rt ~port:src_port (Lbrm.Source.start source ~now:(U.now rt));
  List.iter
    (fun (r, port) -> U.perform rt ~port (Lbrm.Receiver.start r ~now:(U.now rt)))
    receivers;
  { rt; source; src_port; receivers }

let send s payload =
  U.perform s.rt ~port:s.src_port
    (Lbrm.Source.send s.source ~now:(U.now s.rt) payload)

let lossless_udp () =
  require_sockets ();
  let s = make_session ~base_port:48100 ~loss:0. ~receiver_count:3 () in
  for i = 1 to 5 do
    send s (Printf.sprintf "udp-%d" i);
    U.run_for s.rt ~seconds:0.03
  done;
  U.run_for s.rt ~seconds:0.3;
  List.iter
    (fun (r, _) -> checki "all delivered" 5 (Lbrm.Receiver.delivered r))
    s.receivers;
  checkb "no drops injected" true (U.datagrams_dropped s.rt = 0);
  U.close s.rt

let lossy_udp_recovers () =
  require_sockets ();
  let s = make_session ~base_port:48200 ~loss:0.3 ~receiver_count:3 () in
  for i = 1 to 8 do
    send s (Printf.sprintf "udp-%d" i);
    U.run_for s.rt ~seconds:0.05
  done;
  (* Give loss detection (heartbeats) and NACK service time to finish. *)
  U.run_for s.rt ~seconds:1.5;
  List.iter
    (fun (r, port) ->
      checki (Printf.sprintf "receiver %d complete" port) 8
        (Lbrm.Receiver.delivered r))
    s.receivers;
  checkb "losses were actually injected" true (U.datagrams_dropped s.rt > 0);
  checkb "recovery actually happened" true
    (List.exists (fun (r, _) -> Lbrm.Receiver.recovered r > 0) s.receivers);
  U.close s.rt

let fallback_path_recovers () =
  require_sockets ();
  (* Same lossy scenario, forced onto the portable per-datagram
     sendto/recvfrom path: recovery must not depend on the stubs.  The
     retry limit is raised so an unlucky loss pattern cannot make a
     receiver abandon a pursuit (give-up is legitimate protocol
     behaviour at the default limit, but this test asserts completion). *)
  let cfg = { cfg with nack_retry_limit = 20 } in
  let s =
    make_session ~cfg ~use_mmsg:false ~base_port:48400 ~loss:0.3
      ~receiver_count:2 ()
  in
  checkb "portable path active" false (U.mmsg_active s.rt);
  for i = 1 to 5 do
    send s (Printf.sprintf "fb-%d" i);
    U.run_for s.rt ~seconds:0.05
  done;
  (* Settle until complete (bounded): recovery of a trailing loss can
     need a couple of heartbeat rounds under wall-clock scheduling. *)
  let complete () =
    List.for_all (fun (r, _) -> Lbrm.Receiver.delivered r = 5) s.receivers
  in
  let deadline = U.now s.rt +. 6.0 in
  while (not (complete ())) && U.now s.rt < deadline do
    U.run_for s.rt ~seconds:0.2
  done;
  List.iter
    (fun (r, port) ->
      checki (Printf.sprintf "receiver %d complete" port) 5
        (Lbrm.Receiver.delivered r))
    s.receivers;
  U.close s.rt

let peer_states_follow_traffic () =
  require_sockets ();
  (* Liveness thresholds tightened far below the heartbeat interval:
     traffic keeps everyone Active; stopping the world decays peers to
     Suspect/Dead; fresh datagrams revive them. *)
  let module P = Lbrm_run.Peer_manager in
  let s =
    make_session ~suspect_after:0.25 ~dead_after:0.7 ~base_port:48500 ~loss:0.
      ~receiver_count:2 ()
  in
  for i = 1 to 3 do
    send s (Printf.sprintf "live-%d" i);
    U.run_for s.rt ~seconds:0.05
  done;
  let pm = U.peers s.rt in
  (* Peers that transmit (source, loggers) are Active; receivers stay
     silent by design — receiver-reliability means no ACK traffic — so
     they are registered but never promoted past Connecting. *)
  checkb "source active" true (P.state pm ~port:s.src_port = Some P.Active);
  checkb "primary logger active" true
    (P.state pm ~port:(s.src_port + 1) = Some P.Active);
  List.iter
    (fun (_, port) ->
      Alcotest.(check bool)
        (Printf.sprintf "silent receiver %d registered, not active" port)
        true
        (P.state pm ~port = Some P.Connecting))
    s.receivers;
  (* Source heartbeats stop reaching anyone: sleep out the dead
     threshold without running the loop, then let one sweep observe
     the silence.  (run_for ticks internally.) *)
  Unix.sleepf 0.8;
  U.run_for s.rt ~seconds:0.05;
  let _, _, suspect, dead = P.counts pm in
  checkb "silence decayed peers" true (suspect + dead > 0);
  (* Traffic revives: transitions are also mirrored into runtime
     metrics by the on_transition hook. *)
  send s "revive";
  U.run_for s.rt ~seconds:0.3;
  checkb "source revived" true (P.state pm ~port:s.src_port = Some P.Active);
  let m = U.runtime_metrics s.rt in
  checkb "transitions surfaced as metrics" true
    (Lbrm_util.Metrics.value (Lbrm_util.Metrics.counter m "peer.to_active") > 0);
  U.close s.rt

let encode_failure_is_not_loss () =
  require_sockets ();
  (* An unencodable message (over-long NACK list) must land in the
     encode-failure counter and tx.encode_failed metric — never in
     [dropped], which is reserved for injected loss. *)
  let rt = U.create () in
  let handlers =
    {
      H.on_message = (fun ~now:_ ~src:_ _ -> []);
      on_timer = (fun ~now:_ _ -> []);
      on_deliver = None;
      on_notice = None;
    }
  in
  U.add_agent rt ~port:48600 handlers;
  U.add_agent rt ~port:48601 handlers;
  let too_long = List.init 65537 (fun i -> i) in
  U.perform rt ~port:48600
    [
      Lbrm.Io.Send (Lbrm.Io.To_addr 48601, Lbrm_wire.Message.Nack { seqs = too_long });
      Lbrm.Io.Send
        (Lbrm.Io.To_addr 48601, Lbrm_wire.Message.Replica_ack { seq = 1 });
    ];
  U.run_for rt ~seconds:0.05;
  checki "encode failure counted" 1 (U.encode_failures rt);
  checki "not counted as loss" 0 (U.datagrams_dropped rt);
  checki "valid sibling still sent" 1 (U.datagrams_sent rt);
  let m = U.runtime_metrics rt in
  checki "tx.encode_failed metric" 1
    (Lbrm_util.Metrics.value (Lbrm_util.Metrics.counter m "tx.encode_failed"));
  U.close rt

let timer_rearm_and_cancel () =
  require_sockets ();
  (* The runtime's timer heap honours re-arming and cancellation. *)
  let rt = U.create () in
  let fired = ref [] in
  let handlers =
    {
      H.on_message = (fun ~now:_ ~src:_ _ -> []);
      on_timer =
        (fun ~now:_ key ->
          fired := key :: !fired;
          []);
      on_deliver = None;
      on_notice = None;
    }
  in
  U.add_agent rt ~port:48300 handlers;
  U.perform rt ~port:48300
    [
      Lbrm.Io.Set_timer (Lbrm.Io.K_app "a", 0.02);
      Lbrm.Io.Set_timer (Lbrm.Io.K_app "b", 0.02);
      Lbrm.Io.Set_timer (Lbrm.Io.K_app "a", 0.05) (* re-arm a *);
      Lbrm.Io.Cancel_timer (Lbrm.Io.K_app "b");
    ];
  U.run_for rt ~seconds:0.12;
  checkb "a fired exactly once" true (!fired = [ Lbrm.Io.K_app "a" ]);
  U.close rt

let () =
  Alcotest.run "udp"
    [
      ( "udp-runtime",
        [
          Alcotest.test_case "lossless delivery" `Quick lossless_udp;
          Alcotest.test_case "recovery under 30% loss" `Quick
            lossy_udp_recovers;
          Alcotest.test_case "recovery on the portable fallback" `Quick
            fallback_path_recovers;
          Alcotest.test_case "peer states follow traffic" `Quick
            peer_states_follow_traffic;
          Alcotest.test_case "encode failure is not loss" `Quick
            encode_failure_is_not_loss;
          Alcotest.test_case "timer re-arm and cancel" `Quick
            timer_rearm_and_cancel;
        ] );
    ]
