(* The real-socket runtime: LBRM agents over loopback UDP datagrams.
   These tests bind actual sockets and run for wall-clock fractions of a
   second; loss is injected at the send hook (loopback never drops). *)

module U = Lbrm_run.Udp_runtime
module H = Lbrm_run.Handlers

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* Small heartbeat intervals so recovery fits in a short wall-clock run. *)
let cfg =
  {
    Lbrm.Config.default with
    stat_ack_enabled = false;
    h_min = 0.05;
    nack_delay = 0.01;
    nack_timeout = 0.15;
    deposit_timeout = 0.2;
  }

type session = {
  rt : U.t;
  source : Lbrm.Source.t;
  src_port : int;
  receivers : (Lbrm.Receiver.t * int) list;
}

let make_session ~base_port ~loss ~receiver_count =
  let rt = U.create ~loss ~seed:3 () in
  let src_port = base_port in
  let primary_port = base_port + 1 in
  let secondary_port = base_port + 2 in
  let source = Lbrm.Source.create cfg ~self:src_port ~primary:primary_port () in
  let primary =
    Lbrm.Logger.create cfg ~self:primary_port ~source:src_port
      ~rng:(Lbrm_util.Rng.create ~seed:1) ()
  in
  let secondary =
    Lbrm.Logger.create cfg ~self:secondary_port ~source:src_port
      ~parent:primary_port
      ~rng:(Lbrm_util.Rng.create ~seed:2) ()
  in
  U.add_agent rt ~port:src_port (H.of_source source);
  U.add_agent rt ~port:primary_port (H.of_logger primary);
  U.add_agent rt ~port:secondary_port (H.of_logger secondary);
  let receivers =
    List.init receiver_count (fun i ->
        let port = base_port + 3 + i in
        let r =
          Lbrm.Receiver.create cfg ~self:port ~source:src_port
            ~loggers:[ secondary_port; primary_port ]
        in
        U.add_agent rt ~port (H.of_receiver r);
        (r, port))
  in
  let group = cfg.group in
  U.join rt ~group ~port:primary_port;
  U.join rt ~group ~port:secondary_port;
  List.iter (fun (_, p) -> U.join rt ~group ~port:p) receivers;
  U.perform rt ~port:src_port (Lbrm.Source.start source ~now:(U.now rt));
  List.iter
    (fun (r, port) -> U.perform rt ~port (Lbrm.Receiver.start r ~now:(U.now rt)))
    receivers;
  { rt; source; src_port; receivers }

let send s payload =
  U.perform s.rt ~port:s.src_port
    (Lbrm.Source.send s.source ~now:(U.now s.rt) payload)

let lossless_udp () =
  let s = make_session ~base_port:48100 ~loss:0. ~receiver_count:3 in
  for i = 1 to 5 do
    send s (Printf.sprintf "udp-%d" i);
    U.run_for s.rt ~seconds:0.03
  done;
  U.run_for s.rt ~seconds:0.3;
  List.iter
    (fun (r, _) -> checki "all delivered" 5 (Lbrm.Receiver.delivered r))
    s.receivers;
  checkb "no drops injected" true (U.datagrams_dropped s.rt = 0);
  U.close s.rt

let lossy_udp_recovers () =
  let s = make_session ~base_port:48200 ~loss:0.3 ~receiver_count:3 in
  for i = 1 to 8 do
    send s (Printf.sprintf "udp-%d" i);
    U.run_for s.rt ~seconds:0.05
  done;
  (* Give loss detection (heartbeats) and NACK service time to finish. *)
  U.run_for s.rt ~seconds:1.5;
  List.iter
    (fun (r, port) ->
      checki (Printf.sprintf "receiver %d complete" port) 8
        (Lbrm.Receiver.delivered r))
    s.receivers;
  checkb "losses were actually injected" true (U.datagrams_dropped s.rt > 0);
  checkb "recovery actually happened" true
    (List.exists (fun (r, _) -> Lbrm.Receiver.recovered r > 0) s.receivers);
  U.close s.rt

let timer_rearm_and_cancel () =
  (* The runtime's timer heap honours re-arming and cancellation. *)
  let rt = U.create () in
  let fired = ref [] in
  let handlers =
    {
      H.on_message = (fun ~now:_ ~src:_ _ -> []);
      on_timer =
        (fun ~now:_ key ->
          fired := key :: !fired;
          []);
      on_deliver = None;
      on_notice = None;
    }
  in
  U.add_agent rt ~port:48300 handlers;
  U.perform rt ~port:48300
    [
      Lbrm.Io.Set_timer (Lbrm.Io.K_app "a", 0.02);
      Lbrm.Io.Set_timer (Lbrm.Io.K_app "b", 0.02);
      Lbrm.Io.Set_timer (Lbrm.Io.K_app "a", 0.05) (* re-arm a *);
      Lbrm.Io.Cancel_timer (Lbrm.Io.K_app "b");
    ];
  U.run_for rt ~seconds:0.12;
  checkb "a fired exactly once" true (!fired = [ Lbrm.Io.K_app "a" ]);
  U.close rt

let () =
  Alcotest.run "udp"
    [
      ( "udp-runtime",
        [
          Alcotest.test_case "lossless delivery" `Quick lossless_udp;
          Alcotest.test_case "recovery under 30% loss" `Quick
            lossy_udp_recovers;
          Alcotest.test_case "timer re-arm and cancel" `Quick
            timer_rearm_and_cancel;
        ] );
    ]
