(* Unit and property tests for the lbrm_util substrate. *)

module Seqno = Lbrm_util.Seqno
module Heap = Lbrm_util.Heap
module Rng = Lbrm_util.Rng
module Ewma = Lbrm_util.Ewma
module Stats = Lbrm_util.Stats
module Gap_tracker = Lbrm_util.Gap_tracker
module Ring_log = Lbrm_util.Ring_log

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)
let qtest = QCheck_alcotest.to_alcotest

(* ---- Seqno ---- *)

let seqno_basics () =
  checki "succ" 6 (Seqno.succ 5);
  checki "succ wraps" 0 (Seqno.succ (Seqno.space - 1));
  checki "diff forward" 3 (Seqno.diff 8 5);
  checki "diff backward" (-3) (Seqno.diff 5 8);
  checkb "wrapped compare" true Seqno.(Seqno.add 5 (-10) < 5);
  checkb "across wrap" true Seqno.(Seqno.space - 1 < Seqno.succ (Seqno.space - 1))

let seqno_range () =
  Alcotest.check (Alcotest.list Alcotest.int) "middle" [ 6; 7 ] (Seqno.range 5 8);
  Alcotest.check (Alcotest.list Alcotest.int) "adjacent" [] (Seqno.range 5 6);
  Alcotest.check (Alcotest.list Alcotest.int) "same" [] (Seqno.range 5 5);
  let near_wrap = Seqno.space - 2 in
  Alcotest.check (Alcotest.list Alcotest.int) "wrapping"
    [ Seqno.space - 1; 0 ]
    (Seqno.range near_wrap 1)

let seqno_prop_diff_add =
  QCheck.Test.make ~name:"seqno: diff (add s n) s = n for |n| < space/2"
    QCheck.(pair (int_bound (Seqno.space - 1)) (int_range (-1000000) 1000000))
    (fun (s, n) -> Seqno.diff (Seqno.add s n) s = n)

let seqno_prop_antisym =
  QCheck.Test.make ~name:"seqno: diff antisymmetric (mod half-space edge)"
    QCheck.(pair (int_bound (Seqno.space - 1)) (int_bound (Seqno.space - 1)))
    (fun (a, b) ->
      Seqno.diff a b = -Seqno.diff b a || Seqno.diff a b = Seqno.space / 2)

(* ---- Heap ---- *)

let heap_ordering () =
  let h = Heap.create ~dummy:0. in
  List.iter (fun p -> ignore (Heap.add h ~prio:p p)) [ 5.; 1.; 3.; 2.; 4. ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, v) ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.check
    (Alcotest.list (Alcotest.float 0.))
    "sorted" [ 1.; 2.; 3.; 4.; 5. ] (List.rev !out)

let heap_fifo_ties () =
  let h = Heap.create ~dummy:"" in
  ignore (Heap.add h ~prio:1. "a");
  ignore (Heap.add h ~prio:1. "b");
  ignore (Heap.add h ~prio:1. "c");
  let next () = snd (Option.get (Heap.pop h)) in
  Alcotest.check Alcotest.string "fifo a" "a" (next ());
  Alcotest.check Alcotest.string "fifo b" "b" (next ());
  Alcotest.check Alcotest.string "fifo c" "c" (next ())

let heap_remove () =
  let h = Heap.create ~dummy:"" in
  let _a = Heap.add h ~prio:1. "a" in
  let b = Heap.add h ~prio:2. "b" in
  let _c = Heap.add h ~prio:3. "c" in
  checkb "remove live" true (Heap.remove h b);
  checkb "remove again" false (Heap.remove h b);
  checki "size" 2 (Heap.size h);
  Alcotest.check Alcotest.string "a first" "a" (snd (Option.get (Heap.pop h)));
  Alcotest.check Alcotest.string "c second" "c" (snd (Option.get (Heap.pop h)));
  checkb "empty" true (Heap.is_empty h)

let heap_prop_sorted =
  QCheck.Test.make ~name:"heap: pops are sorted"
    QCheck.(list (float_bound_inclusive 1000.))
    (fun prios ->
      let h = Heap.create ~dummy:0. in
      List.iter (fun p -> ignore (Heap.add h ~prio:p p)) prios;
      let rec drain acc =
        match Heap.pop h with
        | Some (p, _) -> drain (p :: acc)
        | None -> List.rev acc
      in
      let out = drain [] in
      List.sort Float.compare prios = out)

let heap_prop_remove_consistent =
  QCheck.Test.make ~name:"heap: removal keeps remaining pops sorted"
    QCheck.(list (pair (float_bound_inclusive 100.) bool))
    (fun entries ->
      let h = Heap.create ~dummy:0. in
      let handles =
        List.map (fun (p, kill) -> (Heap.add h ~prio:p p, p, kill)) entries
      in
      let kept =
        List.filter_map
          (fun (hd, p, kill) ->
            if kill then begin
              ignore (Heap.remove h hd);
              None
            end
            else Some p)
          handles
      in
      let rec drain acc =
        match Heap.pop h with
        | Some (p, _) -> drain (p :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort Float.compare kept)

(* Model-based test: a random interleaving of add / put / remove / pop
   must agree with a sorted-list reference model at every pop, and
   handles must report liveness correctly after removal. *)
let heap_prop_model =
  let model_min model =
    (* (prio, id) with id doubling as FIFO tie-break (ids increase) *)
    List.fold_left
      (fun acc (p, v) ->
        match acc with
        | Some (bp, bv) when bp < p || (bp = p && bv < v) -> acc
        | _ -> Some (p, v))
      None model
  in
  QCheck.Test.make ~count:300
    ~name:"heap: random add/put/remove/pop matches sorted-list model"
    QCheck.(list (pair (int_bound 3) (float_bound_inclusive 50.)))
    (fun ops ->
      let h = Heap.create ~dummy:(-1) in
      let model = ref [] in
      let handles = ref [] in
      let next_id = ref 0 in
      let ok = ref true in
      let check b = if not b then ok := false in
      let drop_value v =
        model := List.filter (fun (_, v') -> v' <> v) !model;
        handles := List.filter (fun (_, v') -> v' <> v) !handles
      in
      let pop_once () =
        match (Heap.pop h, model_min !model) with
        | None, None -> ()
        | Some (p, v), Some (ep, ev) ->
            check (p = ep && v = ev);
            drop_value ev
        | _ -> check false
      in
      List.iter
        (fun (tag, p) ->
          match tag with
          | 0 ->
              let v = !next_id in
              incr next_id;
              let hd = Heap.add h ~prio:p v in
              model := (p, v) :: !model;
              handles := (hd, v) :: !handles
          | 1 ->
              let v = !next_id in
              incr next_id;
              Heap.put h ~prio:p v;
              model := (p, v) :: !model
          | 2 -> (
              match !handles with
              | [] -> ()
              | hs ->
                  let hd, v = List.nth hs (int_of_float p mod List.length hs) in
                  let was_live = Heap.is_live hd in
                  check (Heap.remove h hd = was_live);
                  check (not (Heap.is_live hd));
                  check (Heap.remove h hd = false);
                  check (Heap.value hd = v);
                  if was_live then drop_value v else check true)
          | _ -> pop_once ())
        ops;
      check (Heap.size h = List.length !model);
      while not (Heap.is_empty h) || !model <> [] do
        pop_once ();
        if not !ok then model := [] (* abort on first mismatch *)
      done;
      !ok)

(* Slot blanking: once an entry leaves the heap (pop or remove), the
   backing array and node pool must not keep its value alive.  Weak
   pointers observe collection while the heap itself stays live. *)
let heap_no_retention () =
  let h = Heap.create ~dummy:(ref (-1)) in
  let n = 64 in
  let w = Weak.create n in
  let fill () =
    for i = 0 to n - 1 do
      let v = ref i in
      Weak.set w i (Some v);
      if i land 1 = 0 then Heap.put h ~prio:(float_of_int i) v
      else begin
        let hd = Heap.add h ~prio:(float_of_int i) v in
        if i land 3 = 1 then ignore (Heap.remove h hd)
        (* else: handle dropped here, entry drained below *)
      end
    done
  in
  fill ();
  while Heap.pop h <> None do
    ()
  done;
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to n - 1 do
    if Weak.check w i then incr live
  done;
  checki "no freed slot retains its value" 0 !live;
  (* Keep the heap reachable past the check: the collection above must
     be due to slot blanking, not the heap itself dying. *)
  checki "heap still alive and empty" 0 (Heap.size (Sys.opaque_identity h))

(* ---- Rng ---- *)

let rng_determinism () =
  let a = Rng.create ~seed:9 and b = Rng.create ~seed:9 in
  for _ = 1 to 100 do
    checkf "same stream" (Rng.float a 1.) (Rng.float b 1.)
  done

let rng_bernoulli_edges () =
  let r = Rng.create ~seed:1 in
  for _ = 1 to 50 do
    checkb "p=0 never" false (Rng.bernoulli r ~p:0.);
    checkb "p=1 always" true (Rng.bernoulli r ~p:1.)
  done

let rng_exponential_mean () =
  let r = Rng.create ~seed:2 in
  let n = 20000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:3.
  done;
  let mean = !sum /. float_of_int n in
  checkb (Printf.sprintf "mean %.3f near 3" mean) true (Float.abs (mean -. 3.) < 0.1)

let rng_poisson_mean () =
  let r = Rng.create ~seed:3 in
  let n = 20000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.poisson r ~mean:4.
  done;
  let mean = float_of_int !sum /. float_of_int n in
  checkb (Printf.sprintf "mean %.3f near 4" mean) true (Float.abs (mean -. 4.) < 0.15)

(* ---- Ewma ---- *)

let ewma_plain () =
  let e = Ewma.create ~alpha:0.5 in
  checkb "empty" true (Ewma.value e = None);
  checkf "first obs" 10. (Ewma.update e 10.);
  checkf "second" 15. (Ewma.update e 20.);
  checkf "value_or" 15. (Ewma.value_or ~default:0. e)

let ewma_jacobson () =
  let j = Ewma.Jacobson.create ~init:1. () in
  checkf "initial mean" 1. (Ewma.Jacobson.mean j);
  for _ = 1 to 200 do
    Ewma.Jacobson.observe j 1.
  done;
  checkb "dev shrinks under constant samples" true
    (Ewma.Jacobson.deviation j < 0.01);
  checkb "timeout >= mean" true (Ewma.Jacobson.timeout j >= Ewma.Jacobson.mean j)

(* ---- Stats ---- *)

let stats_welford () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  checki "count" 8 (Stats.count s);
  checkf "mean" 5. (Stats.mean s);
  Alcotest.check (Alcotest.float 1e-6) "variance" 4.571428571428571
    (Stats.variance s);
  checkf "min" 2. (Stats.min s);
  checkf "max" 9. (Stats.max s)

let stats_percentiles () =
  let s = Stats.Sample.create () in
  for i = 1 to 100 do
    Stats.Sample.add s (float_of_int i)
  done;
  checkf "median" 50.5 (Stats.Sample.percentile s 50.);
  checkf "p0" 1. (Stats.Sample.percentile s 0.);
  checkf "p100" 100. (Stats.Sample.percentile s 100.)

let stats_prop_mean_matches =
  QCheck.Test.make ~name:"stats: welford mean = naive mean"
    QCheck.(list_of_size Gen.(1 -- 200) (float_bound_inclusive 1000.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let naive = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
      Float.abs (Stats.mean s -. naive) < 1e-6 *. (1. +. Float.abs naive))

let histogram_buckets () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.6; 9.9; -5.; 50. ];
  let counts = Stats.Histogram.counts h in
  checki "bucket 0 (incl. clamped low)" 2 counts.(0);
  checki "bucket 1" 2 counts.(1);
  checki "bucket 9 (incl. clamped high)" 2 counts.(9);
  checki "total" 6 (Stats.Histogram.total h)

(* ---- Gap_tracker ---- *)

let tracker_in_order () =
  let t = Gap_tracker.create () in
  checkb "first" true (Gap_tracker.note t 1 = First);
  checkb "in order" true (Gap_tracker.note t 2 = In_order);
  checkb "dup" true (Gap_tracker.note t 2 = Duplicate);
  checki "nothing missing" 0 (Gap_tracker.missing_count t)

let tracker_gap_and_fill () =
  let t = Gap_tracker.create () in
  ignore (Gap_tracker.note t 1);
  (match Gap_tracker.note t 5 with
  | Gap_opened gaps ->
      Alcotest.check (Alcotest.list Alcotest.int) "gap" [ 2; 3; 4 ] gaps
  | _ -> Alcotest.fail "expected gap");
  checkb "3 missing" true (Gap_tracker.is_missing t 3);
  checkb "fills" true (Gap_tracker.note t 3 = Fills_gap);
  Alcotest.check (Alcotest.list Alcotest.int) "remaining" [ 2; 4 ]
    (Gap_tracker.missing t)

let tracker_note_exists () =
  let t = Gap_tracker.create () in
  ignore (Gap_tracker.note t 2);
  Alcotest.check (Alcotest.list Alcotest.int) "heartbeat reveals" [ 3; 4 ]
    (Gap_tracker.note_exists t 4);
  Alcotest.check (Alcotest.list Alcotest.int) "idempotent" []
    (Gap_tracker.note_exists t 4);
  checkb "4 fills own gap" true (Gap_tracker.note t 4 = Fills_gap)

let tracker_abandon () =
  let t = Gap_tracker.create () in
  ignore (Gap_tracker.note t 1);
  ignore (Gap_tracker.note t 4);
  Gap_tracker.abandon t 2;
  Alcotest.check (Alcotest.list Alcotest.int) "2 gone" [ 3 ]
    (Gap_tracker.missing t);
  checkb "late arrival of abandoned = dup" true (Gap_tracker.note t 2 = Duplicate)

let tracker_forget_below () =
  let t = Gap_tracker.create () in
  ignore (Gap_tracker.note t 1);
  ignore (Gap_tracker.note t 8);
  let dropped = Gap_tracker.forget_below t 5 in
  Alcotest.check (Alcotest.list Alcotest.int) "dropped" [ 2; 3; 4 ] dropped;
  Alcotest.check (Alcotest.list Alcotest.int) "left" [ 5; 6; 7 ]
    (Gap_tracker.missing t)

let tracker_prop_complete_stream =
  QCheck.Test.make
    ~name:"gap_tracker: any arrival order of 1..n leaves nothing missing"
    QCheck.(int_range 1 50)
    (fun n ->
      let order = Array.init n (fun i -> i + 1) in
      let rng = Rng.create ~seed:n in
      Rng.shuffle rng order;
      let t = Gap_tracker.create () in
      Array.iter (fun s -> ignore (Gap_tracker.note t s)) order;
      Gap_tracker.missing_count t = 0 && Gap_tracker.highest t = Some n)

let tracker_prop_missing_is_complement =
  QCheck.Test.make ~name:"gap_tracker: missing = {first..max} \\ seen"
    QCheck.(list_of_size Gen.(1 -- 60) (int_range 1 80))
    (fun seqs ->
      let t = Gap_tracker.create () in
      List.iter (fun s -> ignore (Gap_tracker.note t s)) seqs;
      let seen = List.sort_uniq compare seqs in
      let hi = List.fold_left Stdlib.max 0 seen in
      let first = List.hd seqs in
      let expect =
        List.filter
          (fun i -> i > first && not (List.mem i seen))
          (List.init hi (fun i -> i + 1))
      in
      Gap_tracker.missing t = expect)

(* ---- Ring_log ---- *)

let ring_eviction () =
  let r = Ring_log.create ~capacity:3 in
  checkb "no evict" true (Ring_log.push r 1 = None);
  ignore (Ring_log.push r 2);
  ignore (Ring_log.push r 3);
  checkb "evicts oldest" true (Ring_log.push r 4 = Some 1);
  Alcotest.check (Alcotest.list Alcotest.int) "contents" [ 2; 3; 4 ]
    (Ring_log.to_list r);
  checkb "oldest" true (Ring_log.oldest r = Some 2);
  checkb "newest" true (Ring_log.newest r = Some 4);
  checkb "find" true (Ring_log.find (fun x -> x = 3) r = Some 3);
  checkb "find missing" true (Ring_log.find (fun x -> x = 9) r = None)

let ring_prop_last_k =
  QCheck.Test.make ~name:"ring_log: keeps exactly the last k items"
    QCheck.(pair (int_range 1 20) (list small_int))
    (fun (cap, xs) ->
      let r = Ring_log.create ~capacity:cap in
      List.iter (fun x -> ignore (Ring_log.push r x)) xs;
      let n = List.length xs in
      let expect =
        if n <= cap then xs else List.filteri (fun i _ -> i >= n - cap) xs
      in
      Ring_log.to_list r = expect)

let () =
  Alcotest.run "util"
    [
      ( "seqno",
        [
          Alcotest.test_case "basics" `Quick seqno_basics;
          Alcotest.test_case "range" `Quick seqno_range;
          qtest seqno_prop_diff_add;
          qtest seqno_prop_antisym;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick heap_ordering;
          Alcotest.test_case "FIFO ties" `Quick heap_fifo_ties;
          Alcotest.test_case "remove" `Quick heap_remove;
          Alcotest.test_case "no retention after pop/remove" `Quick
            heap_no_retention;
          qtest heap_prop_sorted;
          qtest heap_prop_remove_consistent;
          qtest heap_prop_model;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick rng_determinism;
          Alcotest.test_case "bernoulli edges" `Quick rng_bernoulli_edges;
          Alcotest.test_case "exponential mean" `Slow rng_exponential_mean;
          Alcotest.test_case "poisson mean" `Slow rng_poisson_mean;
        ] );
      ( "ewma",
        [
          Alcotest.test_case "plain" `Quick ewma_plain;
          Alcotest.test_case "jacobson" `Quick ewma_jacobson;
        ] );
      ( "stats",
        [
          Alcotest.test_case "welford" `Quick stats_welford;
          Alcotest.test_case "percentiles" `Quick stats_percentiles;
          Alcotest.test_case "histogram" `Quick histogram_buckets;
          qtest stats_prop_mean_matches;
        ] );
      ( "gap_tracker",
        [
          Alcotest.test_case "in order" `Quick tracker_in_order;
          Alcotest.test_case "gap and fill" `Quick tracker_gap_and_fill;
          Alcotest.test_case "note_exists" `Quick tracker_note_exists;
          Alcotest.test_case "abandon" `Quick tracker_abandon;
          Alcotest.test_case "forget_below" `Quick tracker_forget_below;
          qtest tracker_prop_complete_stream;
          qtest tracker_prop_missing_is_complement;
        ] );
      ( "ring_log",
        [
          Alcotest.test_case "eviction" `Quick ring_eviction;
          qtest ring_prop_last_k;
        ] );
    ]
