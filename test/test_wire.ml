(* Wire-format tests: codec round trips, size model, malformed input. *)

module Message = Lbrm_wire.Message
module Codec = Lbrm_wire.Codec
module Payload = Lbrm_wire.Payload

(* Payload views from string literals. *)
let p = Payload.of_string

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let qtest = QCheck_alcotest.to_alcotest

let msg_testable =
  Alcotest.testable Message.pp Message.equal

(* Every message in these tests is within the codec's list bounds unless
   a test is explicitly probing them. *)
let encode_exn m =
  match Codec.encode m with
  | Ok s -> s
  | Error e -> Alcotest.failf "encode error: %s" (Codec.error_to_string e)

let roundtrip m =
  match Codec.decode (encode_exn m) with
  | Ok m' -> Alcotest.check msg_testable "roundtrip" m m'
  | Error e -> Alcotest.failf "decode error: %s" (Codec.error_to_string e)

(* One representative of each constructor. *)
let samples =
  [
    Message.Data { seq = 17; epoch = 3; payload = p "hello" };
    Message.Data { seq = 0; epoch = 0; payload = Payload.empty };
    Message.Heartbeat { seq = 17; hb_index = 12; epoch = 3; payload = None };
    Message.Heartbeat { seq = 9; hb_index = 1; epoch = 0; payload = Some (p "pp") };
    Message.Nack { seqs = [] };
    Message.Nack { seqs = [ 1; 2; 99 ] };
    Message.Retrans { seq = 42; epoch = 7; payload = p "data" };
    Message.Log_deposit { seq = 5; epoch = 1; payload = p "d" };
    Message.Log_ack { primary_seq = 10; replica_seq = 8 };
    Message.Replica_update { seq = 6; epoch = 2; payload = p "r" };
    Message.Replica_ack { seq = 6 };
    Message.Acker_select { epoch = 4; p_ack = 0.25 };
    Message.Acker_reply { epoch = 4; logger = 31 };
    Message.Stat_ack { epoch = 4; seq = 12; logger = 31 };
    Message.Probe { round = 2; p = 0.04 };
    Message.Probe_reply { round = 2; logger = 5 };
    Message.Discovery_query { nonce = 7 };
    Message.Discovery_reply { nonce = 7; logger = 9 };
    Message.Who_is_primary;
    Message.Primary_is { logger = 3 };
    Message.Replica_query;
    Message.Replica_status { seq = 44 };
    Message.Promote { replicas = [] };
    Message.Promote { replicas = [ 4; 5; 6 ] };
    Message.Ring_forward { seq = 8; epoch = 2; payload = p "ring" };
    Message.Ring_ack { seq = 8 };
    Message.Ring_set { succ = None; head = 3 };
    Message.Ring_set { succ = Some 5; head = 3 };
    Message.Quorum_ack { seq = 21 };
  ]

let all_constructors_roundtrip () = List.iter roundtrip samples

let size_model_matches () =
  List.iter
    (fun m ->
      checkb
        (Format.asprintf "size model for %s" (Message.kind m))
        true
        (Codec.roundtrip_size_matches m))
    samples

let truncation_detected () =
  List.iter
    (fun m ->
      let enc = encode_exn m in
      (* Every strict prefix must fail to decode (never succeed). *)
      for len = 0 to String.length enc - 1 do
        match Codec.decode (String.sub enc 0 len) with
        | Error _ -> ()
        | Ok m' ->
            Alcotest.failf "prefix of %s decoded as %s"
              (Message.kind m) (Message.kind m')
      done)
    samples

let trailing_detected () =
  let enc = encode_exn Message.Who_is_primary ^ "junk" in
  match Codec.decode enc with
  | Error (Codec.Trailing 4) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Codec.error_to_string e)
  | Ok _ -> Alcotest.fail "accepted trailing bytes"

let bad_tag_detected () =
  match Codec.decode "\xff" with
  | Error (Codec.Bad_tag 255) -> ()
  | _ -> Alcotest.fail "expected Bad_tag"

let bad_probability_rejected () =
  (* A Probe with p outside [0,1] must be rejected at decode. *)
  let w = Codec.Writer.create () in
  Codec.Writer.u8 w 11;
  Codec.Writer.u32 w 0;
  Codec.Writer.f64 w 2.5;
  (match Codec.decode (Codec.Writer.contents w) with
  | Error (Codec.Bad_value _) -> ()
  | _ -> Alcotest.fail "accepted p=2.5");
  let w = Codec.Writer.create () in
  Codec.Writer.u8 w 11;
  Codec.Writer.u32 w 0;
  Codec.Writer.f64 w Float.nan;
  match Codec.decode (Codec.Writer.contents w) with
  | Error (Codec.Bad_value _) -> ()
  | _ -> Alcotest.fail "accepted p=nan"

let writer_reader_primitives () =
  let w = Codec.Writer.create () in
  Codec.Writer.u8 w 0xAB;
  Codec.Writer.u16 w 0xCDEF;
  Codec.Writer.u32 w 123456789;
  Codec.Writer.f64 w 3.14159;
  Codec.Writer.bytes w "xyz";
  Codec.Writer.raw w "!";
  let r = Codec.Reader.create (Codec.Writer.contents w) in
  checki "u8" 0xAB (Result.get_ok (Codec.Reader.u8 r));
  checki "u16" 0xCDEF (Result.get_ok (Codec.Reader.u16 r));
  checki "u32" 123456789 (Result.get_ok (Codec.Reader.u32 r));
  Alcotest.check (Alcotest.float 1e-12) "f64" 3.14159
    (Result.get_ok (Codec.Reader.f64 r));
  Alcotest.check Alcotest.string "bytes" "xyz"
    (Result.get_ok (Codec.Reader.bytes r));
  checki "remaining" 1 (Codec.Reader.remaining r)

let payload_views () =
  let base = "hello world" in
  let v = Payload.view base ~off:6 ~len:5 in
  Alcotest.check Alcotest.string "to_owned" "world" (Payload.to_owned v);
  checki "length" 5 (Payload.length v);
  checkb "content equality" true (Payload.equal v (p "world"));
  (* A whole-string view owns its base already: to_owned must not copy. *)
  checkb "whole view is zero-copy" true (Payload.to_owned (p base) == base);
  match Payload.view base ~off:8 ~len:10 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted an out-of-bounds view"

let nack_at_bound_roundtrips () =
  (* The codec bounds NACK lists at [nack_max] seqs: the bound itself
     must round-trip through the preallocated-array path, one past it
     must be refused by the encoder (same limit the decoder enforces). *)
  let seqs = List.init Codec.nack_max (fun i -> i + 1) in
  (match Codec.decode (encode_exn (Message.Nack { seqs })) with
  | Ok (Message.Nack { seqs = seqs' }) ->
      checki "length" Codec.nack_max (List.length seqs');
      checkb "seqs preserved" true (List.equal Int.equal seqs seqs')
  | Ok m -> Alcotest.failf "decoded as %s" (Message.kind m)
  | Error e -> Alcotest.failf "decode error: %s" (Codec.error_to_string e));
  let over = List.init (Codec.nack_max + 1) (fun i -> i + 1) in
  match Codec.encode (Message.Nack { seqs = over }) with
  | Error (Codec.Bad_value _) -> ()
  | Ok _ -> Alcotest.fail "encoded an over-long nack"
  | Error e -> Alcotest.failf "wrong error: %s" (Codec.error_to_string e)

let promote_at_bound () =
  (* Fail-over Promotes carry replica floors; at [promote_max] they
     round-trip, one past it the encoder returns a typed error without
     dirtying the caller's writer. *)
  let at = List.init Codec.promote_max (fun i -> i) in
  (match Codec.decode (encode_exn (Message.Promote { replicas = at })) with
  | Ok (Message.Promote { replicas }) ->
      checki "length" Codec.promote_max (List.length replicas)
  | Ok m -> Alcotest.failf "decoded as %s" (Message.kind m)
  | Error e -> Alcotest.failf "decode error: %s" (Codec.error_to_string e));
  let over = List.init (Codec.promote_max + 1) (fun i -> i) in
  (match Codec.encode (Message.Promote { replicas = over }) with
  | Error (Codec.Bad_value _) -> ()
  | Ok _ -> Alcotest.fail "encoded an over-long promote"
  | Error e -> Alcotest.failf "wrong error: %s" (Codec.error_to_string e));
  let w = Codec.Writer.create () in
  Codec.Writer.u8 w 0x55;
  match Codec.encode_into w (Message.Promote { replicas = over }) with
  | Error _ -> checki "writer untouched on error" 1 (Codec.Writer.length w)
  | Ok () -> Alcotest.fail "encode_into accepted an over-long promote"

(* ---- Property tests over random messages ---- *)

let gen_payload =
  QCheck.Gen.(map Payload.of_string (string_size ~gen:printable (0 -- 300)))
let gen_seq = QCheck.Gen.(0 -- 1_000_000)
let gen_addr = QCheck.Gen.(0 -- 10_000)
let gen_prob = QCheck.Gen.(map (fun x -> float_of_int x /. 1000.) (0 -- 1000))

let gen_message : Message.t QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [
      ( 3,
        map3
          (fun seq epoch payload -> Message.Data { seq; epoch; payload })
          gen_seq (0 -- 100) gen_payload );
      ( 2,
        map3
          (fun seq hb_index payload ->
            Message.Heartbeat { seq; hb_index; epoch = 1; payload })
          gen_seq (0 -- 1000)
          (opt gen_payload) );
      (2, map (fun seqs -> Message.Nack { seqs }) (list_size (0 -- 40) gen_seq));
      ( 2,
        map3
          (fun seq epoch payload -> Message.Retrans { seq; epoch; payload })
          gen_seq (0 -- 100) gen_payload );
      ( 1,
        map3
          (fun seq epoch payload -> Message.Log_deposit { seq; epoch; payload })
          gen_seq (0 -- 100) gen_payload );
      ( 1,
        map2
          (fun primary_seq replica_seq ->
            Message.Log_ack { primary_seq; replica_seq })
          gen_seq gen_seq );
      ( 1,
        map2
          (fun epoch p_ack -> Message.Acker_select { epoch; p_ack })
          (0 -- 100) gen_prob );
      ( 1,
        map3
          (fun epoch seq logger -> Message.Stat_ack { epoch; seq; logger })
          (0 -- 100) gen_seq gen_addr );
      (1, map2 (fun round p -> Message.Probe { round; p }) (0 -- 20) gen_prob);
      ( 1,
        map
          (fun replicas -> Message.Promote { replicas })
          (list_size (0 -- 10) gen_addr) );
    ]

let arb_message = QCheck.make ~print:Message.show gen_message

let prop_roundtrip =
  QCheck.Test.make ~count:500 ~name:"codec: decode (encode m) = m" arb_message
    (fun m ->
      match Codec.decode (encode_exn m) with
      | Ok m' -> Message.equal m m'
      | Error _ -> false)

let prop_size_model =
  QCheck.Test.make ~count:500
    ~name:"codec: wire_size = |encode| + header overhead" arb_message
    Codec.roundtrip_size_matches

let prop_decode_never_raises =
  QCheck.Test.make ~count:1000 ~name:"codec: decode never raises on junk"
    QCheck.(string_gen_of_size Gen.(0 -- 64) Gen.char)
    (fun junk ->
      (match Codec.decode junk with Ok _ -> true | Error _ -> true)
      &&
      match Codec.decode_bytes (Bytes.of_string junk) with
      | Ok _ -> true
      | Error _ -> true)

let payloads_of = function
  | Message.Data { payload; _ }
  | Message.Retrans { payload; _ }
  | Message.Log_deposit { payload; _ }
  | Message.Replica_update { payload; _ }
  | Message.Ring_forward { payload; _ }
  | Message.Heartbeat { payload = Some payload; _ } ->
      [ payload ]
  | _ -> []

let prop_views_equal_owned =
  (* Decoded payloads are views over the encoded buffer; each must agree
     byte-for-byte with its owned copy. *)
  QCheck.Test.make ~count:500
    ~name:"codec: decoded views equal their to_owned copies" arb_message
    (fun m ->
      match Codec.decode (encode_exn m) with
      | Error _ -> false
      | Ok m' ->
          List.for_all
            (fun v ->
              let owned = Payload.to_owned v in
              String.length owned = Payload.length v
              && String.equal owned (Payload.to_string v)
              && Payload.equal v (Payload.of_string owned))
            (payloads_of m'))

let prop_mutation_fuzz =
  (* Flip bytes of valid encodings: decode must never raise and, when it
     succeeds, must yield a message whose re-encoding round-trips (i.e.
     the codec is total and self-consistent even on corrupted input). *)
  QCheck.Test.make ~count:1000 ~name:"codec: byte mutations never crash"
    QCheck.(triple arb_message small_nat (int_bound 255))
    (fun (m, pos, byte) ->
      let enc = Bytes.of_string (encode_exn m) in
      if Bytes.length enc = 0 then true
      else begin
        Bytes.set enc (pos mod Bytes.length enc) (Char.chr byte);
        match Codec.decode (Bytes.to_string enc) with
        | Error _ -> true
        | Ok m' -> (
            (* Anything the decoder accepted is within the list bounds,
               so re-encoding must succeed. *)
            match Codec.decode (encode_exn m') with
            | Ok m'' -> Message.equal m' m''
            | Error _ -> false)
      end)

let encode_at_slots () =
  (* [encode_at] is the batched runtime's entry point: it must place the
     message exactly at [pos], never touch bytes outside [pos, pos+size),
     and leave the buffer untouched on any error. *)
  let m = Message.Data { seq = 17; epoch = 3; payload = p "slotted" } in
  let size = Message.body_size m in
  let buf = Bytes.make (size + 16) '\xAA' in
  (match Codec.encode_at buf ~pos:8 ~limit:(8 + size) m with
  | Error e -> Alcotest.failf "encode_at: %s" (Codec.error_to_string e)
  | Ok n ->
      checki "returned length is body_size" size n;
      (match Codec.decode_bytes ~pos:8 ~len:n buf with
      | Ok m' -> Alcotest.check msg_testable "roundtrips at offset" m m'
      | Error e -> Alcotest.failf "decode_bytes: %s" (Codec.error_to_string e));
      for i = 0 to 7 do
        checkb "prefix guard untouched" true (Bytes.get buf i = '\xAA')
      done;
      for i = 8 + size to Bytes.length buf - 1 do
        checkb "suffix guard untouched" true (Bytes.get buf i = '\xAA')
      done);
  (* Slot too small: refused up front, nothing written. *)
  let tight = Bytes.make (size + 8) '\xBB' in
  (match Codec.encode_at tight ~pos:8 ~limit:(8 + size - 1) m with
  | Ok _ -> Alcotest.fail "encode_at accepted an undersized slot"
  | Error (Codec.Bad_value _) ->
      checkb "undersized slot leaves buffer untouched" true
        (Bytes.for_all (fun c -> c = '\xBB') tight)
  | Error e -> Alcotest.failf "unexpected error: %s" (Codec.error_to_string e));
  (* Validation failures are caught before the bound check writes. *)
  let over = Message.Nack { seqs = List.init (Codec.nack_max + 1) Fun.id } in
  let room = Bytes.make (8 * (Codec.nack_max + 2)) '\xCC' in
  match Codec.encode_at room ~pos:0 ~limit:(Bytes.length room) over with
  | Ok _ -> Alcotest.fail "encode_at accepted an over-bound NACK"
  | Error (Codec.Bad_value _) ->
      checkb "invalid message leaves buffer untouched" true
        (Bytes.for_all (fun c -> c = '\xCC') room)
  | Error e -> Alcotest.failf "unexpected error: %s" (Codec.error_to_string e)

let prop_promote_bound =
  (* Encoding succeeds exactly within the decoder's Promote bound, and
     every encodable Promote round-trips. *)
  QCheck.Test.make ~count:60 ~name:"codec: promote encodes iff within bound"
    QCheck.(int_range (Codec.promote_max - 30) (Codec.promote_max + 30))
    (fun n ->
      let m = Message.Promote { replicas = List.init n (fun i -> i) } in
      match Codec.encode m with
      | Ok s -> (
          n <= Codec.promote_max
          &&
          match Codec.decode s with
          | Ok m' -> Message.equal m m'
          | Error _ -> false)
      | Error (Codec.Bad_value _) -> n > Codec.promote_max
      | Error _ -> false)

let prop_control_classification =
  QCheck.Test.make ~count:300
    ~name:"message: payload-bearing packets are not control" arb_message
    (fun m ->
      match m with
      | Message.Data _ | Message.Retrans _ -> not (Message.is_control m)
      | Message.Heartbeat { payload = Some _; _ } -> not (Message.is_control m)
      | _ -> Message.is_control m)

let () =
  Alcotest.run "wire"
    [
      ( "codec",
        [
          Alcotest.test_case "all constructors roundtrip" `Quick
            all_constructors_roundtrip;
          Alcotest.test_case "size model matches encoding" `Quick
            size_model_matches;
          Alcotest.test_case "every truncation detected" `Quick
            truncation_detected;
          Alcotest.test_case "trailing bytes detected" `Quick trailing_detected;
          Alcotest.test_case "bad tag detected" `Quick bad_tag_detected;
          Alcotest.test_case "bad probability rejected" `Quick
            bad_probability_rejected;
          Alcotest.test_case "writer/reader primitives" `Quick
            writer_reader_primitives;
          Alcotest.test_case "payload views" `Quick payload_views;
          Alcotest.test_case "nack at the 65536 bound" `Quick
            nack_at_bound_roundtrips;
          Alcotest.test_case "promote at the 1024 bound" `Quick
            promote_at_bound;
          Alcotest.test_case "encode_at fills slots in place" `Quick
            encode_at_slots;
        ] );
      ( "properties",
        [
          qtest prop_roundtrip;
          qtest prop_size_model;
          qtest prop_decode_never_raises;
          qtest prop_views_equal_owned;
          qtest prop_mutation_fuzz;
          qtest prop_promote_bound;
          qtest prop_control_classification;
        ] );
    ]
