(* CLI for lbrm-lint.  See lint_core.ml for the rules.

   usage: lint.exe [--allow FILE] [--all-rules] [--root DIR] <cmt...>

   Arguments are .cmt files or directories containing them (each
   library's .objs/byte directory).  Exit 0: clean; 1: findings;
   2: usage error. *)

let () =
  let allow_file = ref None in
  let all_rules = ref false in
  let root = ref "." in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--allow" :: f :: rest ->
        allow_file := Some f;
        parse rest
    | "--all-rules" :: rest ->
        all_rules := true;
        parse rest
    | "--root" :: d :: rest ->
        root := d;
        parse rest
    | ("--allow" | "--root") :: [] | "-h" :: _ | "--help" :: _ ->
        prerr_endline
          "usage: lint.exe [--allow FILE] [--all-rules] [--root DIR] <cmt...>";
        exit 2
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !paths = [] then begin
    prerr_endline "lint.exe: no .cmt files or directories given";
    exit 2
  end;
  let allow =
    match !allow_file with Some f -> Lint_core.load_allow f | None -> []
  in
  let findings =
    Lint_core.run ~all_rules:!all_rules ~root:!root ~allow (List.rev !paths)
  in
  List.iter
    (fun f -> print_endline (Lint_core.finding_to_string f))
    findings;
  if findings <> [] then begin
    Printf.eprintf "lbrm-lint: %d finding(s)\n" (List.length findings);
    exit 1
  end
