(* CLI for lbrm-lint.  See lint_core.ml for the rules and passes.

   usage: lint.exe [--allow FILE] [--manifest FILE] [--sarif FILE]
                   [--all-rules] [--root DIR] <cmt...>

   Arguments are .cmt files or directories containing them (each
   library's .objs/byte directory).  --manifest enables the [hot-alloc]
   pass over the given lint.hotpaths file; --sarif additionally writes
   the findings as a SARIF 2.1.0 report (written even when clean, so CI
   always has an artifact).  Exit 0: clean; 1: findings; 2: usage
   error. *)

let () =
  let allow_file = ref None in
  let manifest = ref None in
  let sarif = ref None in
  let all_rules = ref false in
  let root = ref "." in
  let paths = ref [] in
  let usage () =
    prerr_endline
      "usage: lint.exe [--allow FILE] [--manifest FILE] [--sarif FILE] \
       [--all-rules] [--root DIR] <cmt...>";
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--allow" :: f :: rest ->
        allow_file := Some f;
        parse rest
    | "--manifest" :: f :: rest ->
        manifest := Some f;
        parse rest
    | "--sarif" :: f :: rest ->
        sarif := Some f;
        parse rest
    | "--all-rules" :: rest ->
        all_rules := true;
        parse rest
    | "--root" :: d :: rest ->
        root := d;
        parse rest
    | ("--allow" | "--manifest" | "--sarif" | "--root") :: []
    | "-h" :: _
    | "--help" :: _ ->
        usage ()
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !paths = [] then begin
    prerr_endline "lint.exe: no .cmt files or directories given";
    exit 2
  end;
  let allow =
    match !allow_file with Some f -> Lint_core.load_allow f | None -> []
  in
  let findings =
    Lint_core.run ~all_rules:!all_rules ~root:!root ~allow ?manifest:!manifest
      (List.rev !paths)
  in
  List.iter (fun f -> print_endline (Lint_core.finding_to_string f)) findings;
  Option.iter (fun path -> Lint_sarif.write path findings) !sarif;
  if findings <> [] then begin
    let by_rule = Hashtbl.create 8 in
    List.iter
      (fun f ->
        let r = f.Lint_core.rule in
        Hashtbl.replace by_rule r
          (1 + Option.value ~default:0 (Hashtbl.find_opt by_rule r)))
      findings;
    let counts =
      Hashtbl.fold (fun r n acc -> (r, n) :: acc) by_rule []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.map (fun (r, n) -> Printf.sprintf "%s %d" r n)
      |> String.concat ", "
    in
    Printf.eprintf "lbrm-lint: %d finding(s) (%s)\n" (List.length findings)
      counts;
    exit 1
  end
