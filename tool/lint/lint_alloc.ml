(* [hot-alloc]: allocation-effect analysis over the hot-path manifest.

   lint.hotpaths lists the functions on the steady-state datagram path,
   one per line:

     Module.fn path/to/file.ml [zero]

   Each listed function must carry [@lint.hot] on its binding (manifest
   and annotations are cross-checked both ways, so neither can drift),
   and its body must be free of heap allocation except where a subtree
   is blessed with [@lint.alloc "reason"] — the justification for a
   counted slow path.  A justification that covers no allocation is
   itself a finding, so annotations cannot outlive the code they
   excuse.  The `zero` tag does not change this pass: it marks entries
   whose fast path must measure zero minor words at runtime, which the
   Gc cross-check in test_transport.ml enforces.

   What counts as an allocation is the set a reader of the generated
   cmm would recognise: block construction (tuples, records,
   non-constant constructors, arrays, closures, lazy), calls into
   allocating stdlib entry points (Bytes.create, List.map, sprintf,
   ...), Int32/Int64/Nativeint operations returning a boxed result,
   and partial applications.  Compiler-inserted float boxing at call
   boundaries is deliberately out of scope — it depends on inlining —
   and is covered by the dynamic cross-check instead. *)

open Typedtree
module C = Lint_common

let rule = "hot-alloc"

(* --- manifest ---------------------------------------------------------- *)

type entry = {
  e_fun : string; (* "Codec.encode_at" *)
  e_file : string; (* "lib/wire/codec.ml" *)
  e_zero : bool;
  e_line : int; (* line in the manifest, for diagnostics *)
  mutable e_seen : bool;
}

let parse_line lnum ln =
  let ln =
    match String.index_opt ln '#' with
    | Some i -> String.sub ln 0 i
    | None -> ln
  in
  match
    String.split_on_char ' ' ln
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  with
  | [] -> Ok None
  | [ e_fun; e_file ] ->
      Ok (Some { e_fun; e_file; e_zero = false; e_line = lnum; e_seen = false })
  | [ e_fun; e_file; "zero" ] ->
      Ok (Some { e_fun; e_file; e_zero = true; e_line = lnum; e_seen = false })
  | _ -> Error "expected `Module.fn path/to/file.ml [zero]`"

let load_manifest path =
  if not (Sys.file_exists path) then
    ([], [ { C.file = path; line = 0; rule; msg = "hot-path manifest not found" } ])
  else begin
    let ic = open_in path in
    let entries = ref [] and errs = ref [] and lnum = ref 0 in
    (try
       while true do
         let ln = input_line ic in
         incr lnum;
         match parse_line !lnum ln with
         | Ok None -> ()
         | Ok (Some e) -> entries := e :: !entries
         | Error msg ->
             errs :=
               {
                 C.file = path;
                 line = !lnum;
                 rule;
                 msg = "bad manifest line: " ^ msg;
               }
               :: !errs
       done
     with End_of_file -> close_in ic);
    (List.rev !entries, List.rev !errs)
  end

let module_of_src src =
  Filename.basename src |> Filename.remove_extension |> String.capitalize_ascii

(* --- allocation classification ----------------------------------------- *)

let alloc_call n =
  match n with
  | "ref" -> Some "ref builds a mutable cell"
  | "^" -> Some "(^) builds a fresh string"
  | "@" | "List.append" | "List.rev_append" | "List.rev" | "List.concat"
  | "List.flatten" | "List.cons" | "List.init" | "List.map" | "List.mapi"
  | "List.rev_map" | "List.concat_map" | "List.filter" | "List.filter_map"
  | "List.sort" | "List.stable_sort" | "List.fast_sort" | "List.sort_uniq"
  | "List.merge" | "List.split" | "List.combine" | "List.of_seq" | "List.to_seq"
    ->
      Some (n ^ " builds list cells")
  | "Bytes.create" | "Bytes.make" | "Bytes.init" | "Bytes.sub" | "Bytes.copy"
  | "Bytes.extend" | "Bytes.cat" | "Bytes.concat" | "Bytes.of_string"
  | "Bytes.to_string" | "Bytes.sub_string" ->
      Some (n ^ " allocates a fresh block")
  | "String.make" | "String.init" | "String.sub" | "String.concat"
  | "String.cat" | "String.map" | "String.mapi" | "String.to_bytes"
  | "String.of_bytes" | "String.split_on_char" | "String.trim"
  | "String.escaped" | "String.uppercase_ascii" | "String.lowercase_ascii"
  | "String.capitalize_ascii" ->
      Some (n ^ " allocates a fresh string")
  | "Array.make" | "Array.create_float" | "Array.init" | "Array.append"
  | "Array.concat" | "Array.sub" | "Array.copy" | "Array.of_list"
  | "Array.to_list" | "Array.of_seq" | "Array.to_seq" | "Array.map"
  | "Array.mapi" ->
      Some (n ^ " allocates its result")
  | "Hashtbl.create" | "Hashtbl.copy" | "Hashtbl.add" | "Hashtbl.replace"
  | "Hashtbl.of_seq" ->
      Some (n ^ " allocates hash-table storage")
  | "Buffer.create" | "Buffer.contents" | "Buffer.to_bytes"
  | "Buffer.add_string" | "Buffer.add_bytes" | "Buffer.add_char"
  | "Buffer.add_substring" ->
      Some (n ^ " allocates buffer storage")
  | "Queue.create" | "Queue.add" | "Queue.push" ->
      Some (n ^ " allocates queue cells")
  | "Printf.sprintf" | "Format.sprintf" | "Format.asprintf" ->
      Some (n ^ " formats into a fresh string")
  | "string_of_int" | "string_of_float" | "string_of_bool" | "float_of_string"
  | "Int.to_string" | "Float.to_string" | "Float.of_string" ->
      Some (n ^ " allocates its result")
  | _ -> None

let boxed_ty ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
      match Path.last p with
      | "int64" | "int32" | "nativeint" -> true
      | _ -> false)
  | _ -> false

let is_arrow ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

let head_ident e =
  match e.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

(* Structured constants — a constructor or tuple whose arguments are
   all literals or further structured constants — are lifted to static
   data by the compiler, so [Error (Bad_value "too long")] costs
   nothing at runtime. *)
let rec static_const e =
  match e.exp_desc with
  | Texp_constant _ -> true
  | Texp_construct (_, _, args) -> List.for_all static_const args
  | Texp_tuple es -> List.for_all static_const es
  | Texp_variant (_, None) -> true
  | Texp_variant (_, Some a) -> static_const a
  | _ -> false

let classify e =
  match e.exp_desc with
  | Texp_function _ -> Some "closure construction"
  | Texp_tuple es when not (List.for_all static_const es) ->
      Some "tuple construction"
  | Texp_construct (_, cd, (_ :: _ as args))
    when not (List.for_all static_const args) ->
      Some (Printf.sprintf "`%s` constructor block" cd.Types.cstr_name)
  | Texp_variant (_, Some a) when not (static_const a) ->
      Some "polymorphic-variant block"
  | Texp_record _ -> Some "record construction"
  | Texp_array (_ :: _) -> Some "array literal"
  | Texp_lazy _ -> Some "lazy block"
  | Texp_object _ | Texp_new _ -> Some "object construction"
  | Texp_pack _ -> Some "first-class-module block"
  | Texp_letop _ -> Some "binding-operator closures"
  | Texp_apply (f, args) -> (
      match Option.map C.norm_path (head_ident f) with
      | Some n when alloc_call n <> None -> alloc_call n
      | Some n
        when (C.has_prefix ~prefix:"Int64." n
             || C.has_prefix ~prefix:"Int32." n
             || C.has_prefix ~prefix:"Nativeint." n)
             && boxed_ty e.exp_type ->
          Some (n ^ " boxes its result")
      | _ ->
          if
            List.exists (fun (_, a) -> Option.is_none a) args
            || is_arrow e.exp_type
          then Some "partial application builds a closure"
          else None)
  | _ -> None

(* --- the walk ----------------------------------------------------------- *)

module State = struct
  type t = {
    src : string;
    out : C.finding list ref;
    justs : (Location.t, bool ref) Hashtbl.t; (* [@lint.alloc] -> used? *)
  }

  let join a _ = a
  let bind _ _ _ _ post = post
  let scope_end t _ = t
  let may_raise _ t _ = t
  let enter_function t = t

  let expr (env : Lint_cfg.env) t e =
    (* Register every in-scope justification so a cover-nothing
       [@lint.alloc] can be reported after the walk. *)
    List.iter
      (fun (a : Parsetree.attribute) ->
        if C.attr_named C.attr_alloc a && not (Hashtbl.mem t.justs a.attr_loc)
        then begin
          Hashtbl.add t.justs a.attr_loc (ref false);
          match C.attr_string [ a ] C.attr_alloc with
          | Some (Some _) -> ()
          | _ ->
              t.out :=
                {
                  C.file = t.src;
                  line = C.line_of a.attr_loc;
                  rule;
                  msg =
                    "[@lint.alloc] needs a reason string: [@lint.alloc \"why \
                     this slow path allocates\"]";
                }
                :: !(t.out)
        end)
      env.attrs;
    (match classify e with
    | None -> ()
    | Some reason -> (
        match List.find_opt (C.attr_named C.attr_alloc) env.attrs with
        | Some a ->
            (* Blessed by the nearest enclosing justification. *)
            Option.iter
              (fun used -> used := true)
              (Hashtbl.find_opt t.justs a.Parsetree.attr_loc)
        | None ->
            t.out :=
              {
                C.file = t.src;
                line = C.line_of e.exp_loc;
                rule;
                msg =
                  Printf.sprintf
                    "heap allocation on a hot path: %s; hoist it out or \
                     justify the slow path with [@lint.alloc \"reason\"]"
                    reason;
              }
              :: !(t.out)));
    t
end

module Eval = Lint_cfg.Make (State)

(* The outermost fun/function chain of a binding is the function's own
   (static) closure, not a per-call allocation: analysis starts at the
   bodies behind it. *)
let rec bodies e =
  match e.exp_desc with
  | Texp_function { cases = [ { c_rhs; c_guard = None; _ } ]; _ } ->
      bodies c_rhs
  | Texp_function { cases; _ } -> List.map (fun c -> c.c_rhs) cases
  | _ -> [ e ]

let check_binding ~src out vb =
  let t = { State.src; out; justs = Hashtbl.create 8 } in
  List.iter (fun b -> ignore (Eval.run t b)) (bodies vb.vb_expr);
  Hashtbl.iter
    (fun loc used ->
      if not !used then
        out :=
          {
            C.file = src;
            line = C.line_of loc;
            rule;
            msg = "[@lint.alloc] justification covers no allocation; delete it";
          }
          :: !out)
    t.State.justs

let check_structure ~manifest ~src str =
  let out = ref [] in
  let modname = module_of_src src in
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, _) -> (
                  let full = modname ^ "." ^ Ident.name id in
                  let entry =
                    List.find_opt
                      (fun en ->
                        String.equal en.e_fun full
                        && String.equal en.e_file src)
                      manifest
                  in
                  let hot = C.has_attr vb.vb_attributes C.attr_hot in
                  match (entry, hot) with
                  | Some en, true ->
                      en.e_seen <- true;
                      check_binding ~src out vb
                  | Some en, false ->
                      en.e_seen <- true;
                      out :=
                        {
                          C.file = src;
                          line = C.line_of vb.vb_loc;
                          rule;
                          msg =
                            Printf.sprintf
                              "%s is listed in the hot-path manifest but its \
                               binding lacks [@lint.hot]"
                              full;
                        }
                        :: !out;
                      check_binding ~src out vb
                  | None, true ->
                      out :=
                        {
                          C.file = src;
                          line = C.line_of vb.vb_loc;
                          rule;
                          msg =
                            Printf.sprintf
                              "%s is annotated [@lint.hot] but missing from \
                               the hot-path manifest"
                              full;
                        }
                        :: !out
                  | None, false -> ())
              | _ -> ())
            vbs
      | _ -> ())
    str.str_items;
  !out

(* Manifest entries that matched nothing: the function was renamed,
   moved, or never existed. *)
let finish ~manifest_file entries =
  List.filter_map
    (fun en ->
      if en.e_seen then None
      else
        Some
          {
            C.file = manifest_file;
            line = en.e_line;
            rule;
            msg =
              Printf.sprintf "manifest entry `%s %s` matched no top-level \
                              binding" en.e_fun en.e_file;
          })
    entries
