(* The shared dataflow core of the lbrm-lint analysis passes.

   [Make (S)] turns a pass-specific abstract state into a
   path-sensitive evaluator over typed-AST expressions: the evaluator
   threads [S.t] through subexpressions in evaluation order, forks it
   at control-flow splits (if / match / try / loops) and [S.join]s the
   branch exits, so a pass sees every acyclic control-flow path of a
   function body without building an explicit block graph.  The three
   things a structured walk cannot express directly are reified for
   the pass:

   - {b exceptional edges}: [S.may_raise] fires at every expression
     that can transfer control out of the function (an application, an
     [assert]) as long as no enclosing [try] can intercept it — the
     hook a leak detector needs to see lease state at the points where
     an exception would abandon the normal path;
   - {b evaluation context}: every visit carries a [parent] describing
     the syntactic role of the expression on the current path (bound
     by a [let], stored into a block, an argument of a known callee),
     which is what turns "this ident occurs here" into "this value
     escapes here";
   - {b attribute scope}: the accumulated `[@lint.*]` attributes of
     all enclosing expressions and bindings, so a justification
     attribute blesses its whole subtree, including closure bodies.

   Closure bodies run on their own paths at unknown times, so the
   evaluator analyses them with a fresh state from [S.enter_function]
   (findings accumulate in the pass, not the state) rather than
   threading the current path's state through them. *)

open Typedtree

type parent =
  | Top  (** statement / tail position *)
  | Bind of Ident.t  (** direct rhs of [let x = ...] *)
  | Build  (** element of a constructed block (tuple, record, array,
               constructor argument) or rhs of a field assignment *)
  | Arg of Path.t option
      (** argument of an application; the path is the callee's head
          ident when it is syntactically known *)

type env = {
  parent : parent;
  attrs : Parsetree.attributes;  (** enclosing [@lint.*] attributes *)
  try_depth : int;  (** > 0: an enclosing [try] may intercept raises *)
}

module type STATE = sig
  type t

  val join : t -> t -> t

  val expr : env -> t -> expression -> t
  (** Called on every expression before structural descent. *)

  val bind : env -> t -> Ident.t -> expression -> t -> t
  (** [bind env pre id rhs post]: a [let]-binding of [id]; [pre] is
      the state before the rhs, [post] after it.  Returns the state
      for the body. *)

  val scope_end : t -> Ident.t -> t
  (** [id] goes out of scope on this path. *)

  val may_raise : env -> t -> expression -> t
  (** [e] can raise with no enclosing in-function handler. *)

  val enter_function : t -> t
  (** State for analysing a closure body (a separate path). *)
end

module Make (S : STATE) = struct
  let sub_env env ?(parent = Top) ?(attrs = []) () =
    { env with parent; attrs = attrs @ env.attrs }

  let head_path e =
    match e.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

  let rec eval env st e =
    let env = { env with attrs = e.exp_attributes @ env.attrs } in
    let st = S.expr env st e in
    let sub ?parent st e' = eval (sub_env env ?parent ()) st e' in
    match e.exp_desc with
    | Texp_ident _ | Texp_constant _ | Texp_instvar _
    | Texp_extension_constructor _ | Texp_unreachable ->
        st
    | Texp_let (_, vbs, body) ->
        let st =
          List.fold_left
            (fun st vb ->
              let benv =
                sub_env env
                  ~parent:
                    (match vb.vb_pat.pat_desc with
                    | Tpat_var (id, _) -> Bind id
                    | _ -> Top)
                  ~attrs:vb.vb_attributes ()
              in
              let post = eval benv st vb.vb_expr in
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, _) -> S.bind benv st id vb.vb_expr post
              | _ -> post)
            st vbs
        in
        let st = sub ~parent:env.parent st body in
        List.fold_left
          (fun st vb ->
            match vb.vb_pat.pat_desc with
            | Tpat_var (id, _) -> S.scope_end st id
            | _ -> st)
          st vbs
    | Texp_function { cases; _ } ->
        (* The body runs on its own future path. *)
        List.iter
          (fun c ->
            ignore
              (eval { env with parent = Top } (S.enter_function st) c.c_rhs))
          cases;
        st
    | Texp_apply (f, args) ->
        let st = sub st f in
        let callee = head_path f in
        let st =
          List.fold_left
            (fun st (_, a) ->
              match a with
              | Some a -> sub ~parent:(Arg callee) st a
              | None -> st)
            st args
        in
        if env.try_depth = 0 then S.may_raise env st e else st
    | Texp_match (scrut, cases, _) ->
        let st = sub st scrut in
        join_cases env st cases
    | Texp_try (body, handlers) ->
        (* The handler can be entered from any point inside the body;
           starting it from the pre-body state over-approximates the
           set of states it can observe on the tracked facts. *)
        let st_body =
          eval { env with parent = Top; try_depth = env.try_depth + 1 } st body
        in
        List.fold_left
          (fun acc c -> S.join acc (sub st c.c_rhs))
          st_body handlers
    | Texp_ifthenelse (cond, e1, e2) -> (
        let st = sub st cond in
        let st1 = sub ~parent:env.parent st e1 in
        match e2 with
        | Some e2 -> S.join st1 (sub ~parent:env.parent st e2)
        | None -> S.join st1 st)
    | Texp_sequence (e1, e2) ->
        let st = sub st e1 in
        sub ~parent:env.parent st e2
    | Texp_while (cond, body) ->
        let st = sub st cond in
        (* The body may run zero times. *)
        S.join st (sub st body)
    | Texp_for (_, _, lo, hi, _, body) ->
        let st = sub st lo in
        let st = sub st hi in
        S.join st (sub st body)
    | Texp_tuple es | Texp_construct (_, _, es) | Texp_array es ->
        List.fold_left (fun st e' -> sub ~parent:Build st e') st es
    | Texp_variant (_, eo) -> (
        match eo with Some e' -> sub ~parent:Build st e' | None -> st)
    | Texp_record { fields; extended_expression; _ } ->
        let st =
          match extended_expression with Some e' -> sub st e' | None -> st
        in
        Array.fold_left
          (fun st (_, def) ->
            match def with
            | Overridden (_, e') -> sub ~parent:Build st e'
            | Kept _ -> st)
          st fields
    | Texp_field (e', _, _) -> sub st e'
    | Texp_setfield (obj, _, _, v) ->
        let st = sub st obj in
        sub ~parent:Build st v
    | Texp_assert (cond, _) ->
        let st = sub st cond in
        if env.try_depth = 0 then S.may_raise env st e else st
    | Texp_lazy e' ->
        (* Forced later, like a closure body. *)
        ignore (eval { env with parent = Top } (S.enter_function st) e');
        st
    | Texp_setinstvar (_, _, _, e') -> sub st e'
    | Texp_send (e', _) -> sub st e'
    | Texp_letmodule (_, _, _, _, body) -> sub ~parent:env.parent st body
    | Texp_letexception (_, body) -> sub ~parent:env.parent st body
    | Texp_open (_, body) -> sub ~parent:env.parent st body
    | Texp_letop { let_; ands; body; _ } ->
        let st = sub st let_.bop_exp in
        let st =
          List.fold_left (fun st a -> sub st a.bop_exp) st ands
        in
        ignore (eval { env with parent = Top } (S.enter_function st) body.c_rhs);
        st
    | Texp_override (_, fields) ->
        List.fold_left (fun st (_, _, e') -> sub st e') st fields
    | Texp_new _ | Texp_object _ | Texp_pack _ -> st

  and join_cases env st cases =
    match
      List.filter_map
        (fun c ->
          (* Exception cases of a match start from the scrutinee's
             pre-state like a try handler; over-approximate with the
             same post-scrutinee state. *)
          match c.c_lhs.pat_desc with
          | _ ->
              let st =
                match c.c_guard with
                | Some g -> eval (sub_env env ()) st g
                | None -> st
              in
              Some (eval (sub_env env ~parent:env.parent ()) st c.c_rhs))
        cases
    with
    | [] -> st
    | first :: rest -> List.fold_left S.join first rest

  let run st e = eval { parent = Top; attrs = []; try_depth = 0 } st e
end
