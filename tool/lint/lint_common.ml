(* Shared plumbing for the lbrm-lint passes: the finding type every
   pass emits, path normalisation over dune's wrapped-library name
   mangling, and helpers for reading the `lint.*` source attributes
   ([@lint.hot], [@lint.alloc "reason"], [@lint.owns "reason"],
   [@@lint.telemetry]) out of the typed AST. *)

type finding = { file : string; line : int; rule : string; msg : string }

let finding_to_string f =
  Printf.sprintf "%s:%d: [%s] %s" f.file f.line f.rule f.msg

let compare_finding a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = String.compare a.rule b.rule in
      if c <> 0 then c else String.compare a.msg b.msg

let line_of loc = loc.Location.loc_start.Lexing.pos_lnum

(* --- path normalisation ---------------------------------------------- *)

(* "Stdlib.compare" -> "compare"; "Lbrm__Io.action" -> "Io.action";
   "Stdlib__Hashtbl.hash" -> "Hashtbl.hash".  Makes ident matching
   robust against module aliasing and dune's wrapped-library name
   mangling. *)
let norm_component c =
  match String.rindex_opt c '_' with
  | Some i when i >= 1 && c.[i - 1] = '_' ->
      String.sub c (i + 1) (String.length c - i - 1)
  | _ -> c

let norm_path p =
  Path.name p
  |> String.split_on_char '.'
  |> List.map norm_component
  |> List.filter (fun c -> c <> "Stdlib")
  |> String.concat "."

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let has_suffix ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.equal (String.sub s (n - m) m) suffix

(* Does the normalised path end with [components]?  "Buf_pool.lease"
   matches `Buf_pool.lease`, `Lbrm_run.Buf_pool.lease` and the wrapped
   `Lbrm_run__Buf_pool.lease`, but not `My_buf_pool.lease`. *)
let path_ends_with p components =
  let want = String.concat "." components in
  let n = norm_path p in
  String.equal n want || has_suffix ~suffix:("." ^ want) n

(* --- lint.* attributes ------------------------------------------------ *)

let attr_named name (a : Parsetree.attribute) =
  String.equal a.Parsetree.attr_name.txt name

let has_attr attrs name = List.exists (attr_named name) attrs

(* The `[@lint.alloc "reason"]` payload.  [None]: attribute absent;
   [Some None]: present but with no (or a non-string) payload;
   [Some (Some s)]: present with reason [s]. *)
let attr_string attrs name =
  match List.find_opt (attr_named name) attrs with
  | None -> None
  | Some a -> (
      match a.Parsetree.attr_payload with
      | Parsetree.PStr
          [
            {
              pstr_desc =
                Pstr_eval
                  ( {
                      pexp_desc =
                        Pexp_constant (Pconst_string (s, _, _));
                      _;
                    },
                    _ );
              _;
            };
          ] ->
          Some (Some s)
      | _ -> Some None)

let attr_hot = "lint.hot"
let attr_alloc = "lint.alloc"
let attr_owns = "lint.owns"
let attr_telemetry = "lint.telemetry"
