(* lbrm-lint: typed-AST analysis suite for the protocol plane.

   This module is the driver: it walks the .cmt files dune produces
   for every library, runs the single-pass rule list below, hands each
   typed structure to the dataflow passes (Lint_alloc [hot-alloc],
   Lint_pool [pool-leak], Lint_telemetry [dead-telemetry] — all built
   on the shared Lint_cfg evaluator), applies the allowlist, and
   reports.

   The rule-list pass enforces the repo invariants described in
   DESIGN.md "Static invariants":

     [sans-io]          protocol libraries (lib/util, lib/wire, lib/sim,
                        lib/core, lib/baselines) reference no Unix, no
                        wall-clock, no ambient randomness, no channels.
     [poly-compare]     no polymorphic compare/hash in protocol
                        libraries; ordering operators only at types
                        whose structural order is deterministic.
     [hashtbl-order]    no Hashtbl.fold/iter whose element type flows
                        into an Io.action list without an intervening
                        sort.
     [catch-all]        no `try ... with _ ->` (or a named-but-unused
                        exception variable) anywhere; no Obj.magic
                        anywhere ([obj-magic]).
     [decode-totality]  every Codec.decode/decode_bytes result is
                        matched on both Ok and Error (or handed whole
                        to a handler); never get_ok'd, ignored or
                        asserted away.
     [raw-socket]       no direct Unix.sendto/recvfrom anywhere except
                        lib/run/sockmsg.ml, the transport's single
                        kernel-facing choke point (batching, fallback
                        and retry live there).

   Findings print as `file:line: [rule] message`.  A checked-in
   allowlist (lint.allow) grandfathers documented exceptions; stale
   allowlist entries are themselves findings, so the list can only
   shrink. *)

open Typedtree

type finding = Lint_common.finding = {
  file : string;
  line : int;
  rule : string;
  msg : string;
}

let finding_to_string = Lint_common.finding_to_string
let compare_finding = Lint_common.compare_finding

(* --- allowlist ------------------------------------------------------- *)

type allow_entry = {
  a_rule : string;
  a_file : string;
  a_line : int option; (* None: whole file for that rule *)
  mutable a_used : bool;
}

let parse_allow_line ln =
  let ln =
    match String.index_opt ln '#' with
    | Some i -> String.sub ln 0 i
    | None -> ln
  in
  match
    String.split_on_char ' ' ln
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  with
  | [] -> None
  | [ a_rule; a_file ] -> Some { a_rule; a_file; a_line = None; a_used = false }
  | [ a_rule; a_file; line ] -> (
      match int_of_string_opt line with
      | Some n -> Some { a_rule; a_file; a_line = Some n; a_used = false }
      | None -> Some { a_rule; a_file = a_file ^ " " ^ line; a_line = None; a_used = false })
  | _ -> None

let load_allow path =
  if not (Sys.file_exists path) then []
  else
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | ln -> go (match parse_allow_line ln with Some e -> e :: acc | None -> acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []

let allowed entries f =
  List.exists
    (fun e ->
      let hit =
        String.equal e.a_rule f.rule
        && String.equal e.a_file f.file
        && match e.a_line with None -> true | Some l -> l = f.line
      in
      if hit then e.a_used <- true;
      hit)
    entries

(* --- path normalisation (see Lint_common) ------------------------------ *)

let norm_path = Lint_common.norm_path

(* --- type inspection -------------------------------------------------- *)

let type_mentions pred ty =
  let visited = Hashtbl.create 16 in
  let found = ref false in
  let rec go ty =
    let id = Types.get_id ty in
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      (match Types.get_desc ty with
      | Types.Tconstr (p, _, _) -> if pred p then found := true
      | _ -> ());
      Btype.iter_type_expr go ty
    end
  in
  go ty;
  !found

let mentions_channel ty =
  type_mentions
    (fun p ->
      match Path.last p with
      | "in_channel" | "out_channel" -> true
      | _ -> false)
    ty

let mentions_io_action ty =
  type_mentions (fun p -> String.equal (norm_path p) "Io.action") ty

(* Types at which the structural order of polymorphic comparison
   operators is deterministic and representation-independent. *)
let rec order_safe env ty =
  let ty = try Ctype.expand_head env ty with _ -> ty in
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) -> (
      match norm_path p with
      | "int" | "char" | "bool" | "unit" | "float" | "string" | "bytes"
      | "int32" | "int64" | "nativeint" ->
          true
      | "list" | "option" | "array" | "ref" -> List.for_all (order_safe env) args
      | _ -> false)
  | Types.Ttuple l -> List.for_all (order_safe env) l
  | _ -> false

(* --- ident classification --------------------------------------------- *)

let sys_banned =
  [
    "Sys.time"; "Sys.file_exists"; "Sys.remove"; "Sys.rename"; "Sys.readdir";
    "Sys.command"; "Sys.getenv"; "Sys.getenv_opt"; "Sys.chdir"; "Sys.getcwd";
    "Sys.is_directory";
  ]

let stdio_banned =
  [
    "stdin"; "stdout"; "stderr"; "print_char"; "print_string"; "print_bytes";
    "print_int"; "print_float"; "print_endline"; "print_newline"; "prerr_char";
    "prerr_string"; "prerr_bytes"; "prerr_int"; "prerr_float"; "prerr_endline";
    "prerr_newline"; "read_line"; "read_int"; "read_int_opt"; "read_float";
    "read_float_opt";
  ]

let has_prefix = Lint_common.has_prefix

(* [sans-io] violation message for an ident, if any. *)
let sans_io_violation path ty =
  let n = norm_path path in
  let head = Ident.name (Path.head path) in
  if String.equal head "Unix" || String.equal head "UnixLabels" then
    Some (Printf.sprintf "reference to %s: protocol libraries are sans-IO" n)
  else if List.mem n sys_banned then
    Some (Printf.sprintf "%s reads ambient system state" n)
  else if String.equal n "Random.self_init" || String.equal n "Random.State.make_self_init"
  then Some (n ^ ": nondeterministic seeding; inject an Rng.t instead")
  else if has_prefix ~prefix:"Random." n && not (has_prefix ~prefix:"Random.State." n)
  then
    (* The global Random state is ambient mutable state shared across
       the whole program: draws depend on unrelated call sites, so a
       seeded run is not reproducible.  Random.State.* with an injected
       state is fine (Rng.t wraps one). *)
    Some (n ^ " draws from the ambient global RNG; inject an Rng.t instead")
  else if List.mem n stdio_banned then
    Some (n ^ " performs console IO; emit Io.actions instead")
  else if has_prefix ~prefix:"In_channel." n || has_prefix ~prefix:"Out_channel." n
  then Some (n ^ " performs channel IO; inject a file-ops record instead")
  else if
    (* Only externally-defined idents: flagging every use of a local
       variable of channel type would bury the introduction site. *)
    (match path with Path.Pident _ -> false | _ -> true) && mentions_channel ty
  then Some (Printf.sprintf "%s involves in_channel/out_channel" n)
  else None

let poly_compare_always_banned n =
  match n with
  | "compare" | "Hashtbl.hash" | "Hashtbl.seeded_hash" | "Hashtbl.hash_param" ->
      true
  | _ -> false

let poly_order_op n =
  match n with
  | "=" | "<>" | "<" | ">" | "<=" | ">=" | "min" | "max" -> true
  | _ -> false

let is_ident_named names e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> List.mem (norm_path p) names
  | _ -> false

let rec is_sort_app e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
      match norm_path p with
      | "List.sort" | "List.stable_sort" | "List.fast_sort" | "List.sort_uniq"
      | "Array.sort" | "Array.stable_sort" ->
          true
      | _ -> false)
  | Texp_apply (f, _) -> is_sort_app f
  | _ -> false

let is_hashtbl_traversal e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
      match norm_path p with
      | "Hashtbl.fold" | "Hashtbl.iter" | "Hashtbl.to_seq"
      | "Hashtbl.to_seq_keys" | "Hashtbl.to_seq_values" ->
          Some (norm_path p)
      | _ -> None)
  | _ -> None

let rec is_decode_app e =
  match e.exp_desc with
  | Texp_apply (f, _) -> is_decode_app f
  | Texp_ident (p, _, _) -> (
      match Path.last p with
      | "decode" | "decode_bytes" ->
          (* Codec.decode / Lbrm_wire__Codec.decode / open Codec *)
          let n = norm_path p in
          has_prefix ~prefix:"Codec." n
      | _ -> false)
  | _ -> false

(* --- the walker -------------------------------------------------------- *)

type ctx = {
  src : string; (* source path as recorded in the cmt *)
  protocol : bool; (* rules 1 and 2 apply *)
  mutable sorted_depth : int; (* > 0: inside an argument of a sort *)
  mutable out : finding list;
}

let emit ctx ~loc ~rule msg =
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  ctx.out <- { file = ctx.src; line; rule; msg } :: ctx.out

(* Does [e] anywhere reference ident [id]?  (catch-all: is the caught
   exception actually used by the handler?) *)
let uses_ident id e =
  let found = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub x ->
          (match x.exp_desc with
          | Texp_ident (Path.Pident i, _, _) when Ident.same i id -> found := true
          | _ -> ());
          Tast_iterator.default_iterator.expr sub x);
    }
  in
  it.expr it e;
  !found

(* Does any subexpression of [e] have a type mentioning Io.action? *)
let subexpr_mentions_action e =
  let found = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub x ->
          if mentions_io_action x.exp_type then found := true;
          Tast_iterator.default_iterator.expr sub x);
    }
  in
  it.expr it e;
  !found

let rec pattern_has_catch_all : type k. k general_pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Tpat_any -> true
  | Tpat_alias (p, _, _) -> pattern_has_catch_all p
  | Tpat_or (a, b, _) -> pattern_has_catch_all a || pattern_has_catch_all b
  | _ -> false

let pattern_catch_var : value general_pattern -> Ident.t option =
 fun p -> match p.pat_desc with Tpat_var (id, _) -> Some id | _ -> None

let rec pattern_mentions_constr : type k. string -> k general_pattern -> bool =
 fun name p ->
  match p.pat_desc with
  | Tpat_construct (_, c, _, _) -> String.equal c.Types.cstr_name name
  | Tpat_alias (p, _, _) -> pattern_mentions_constr name p
  | Tpat_or (a, b, _) ->
      pattern_mentions_constr name a || pattern_mentions_constr name b
  | Tpat_value v -> pattern_mentions_constr name (v :> value general_pattern)
  | _ -> false

let is_assert_false e =
  match e.exp_desc with
  | Texp_assert ({ exp_desc = Texp_construct (_, c, _); _ }, _) ->
      String.equal c.Types.cstr_name "false"
  | _ -> false

let case_rhs_unreachable c = is_assert_false c.c_rhs

let lazy_env e = lazy (try Envaux.env_of_only_summary e.exp_env with _ -> e.exp_env)

(* The polymorphic comparison/hash primitives live in the Stdlib unit;
   a locally-defined [compare]/[min]/[<=] (Seqno.compare, Stats.min) is
   exactly the dedicated comparator the rule asks for. *)
let from_stdlib p =
  let head = Ident.name (Path.head p) in
  String.equal head "Stdlib" || has_prefix ~prefix:"Stdlib__" head

(* [raw-socket] — datagram syscalls outside the transport choke point.
   Sockmsg owns batching, the portable fallback and the full-buffer
   retry; a stray sendto/recvfrom silently skips all three. *)
let raw_socket_banned n =
  match n with
  | "Unix.sendto" | "Unix.recvfrom" | "UnixLabels.sendto"
  | "UnixLabels.recvfrom" ->
      true
  | _ -> false

let raw_socket_exempt src = String.equal src "lib/run/sockmsg.ml"

let inspect_ident ctx e p =
  let n = norm_path p in
  (* [obj-magic] — everywhere *)
  if String.equal n "Obj.magic" then
    emit ctx ~loc:e.exp_loc ~rule:"obj-magic"
      "Obj.magic defeats the type system; use a typed alternative"
  else if raw_socket_banned n && not (raw_socket_exempt ctx.src) then
    emit ctx ~loc:e.exp_loc ~rule:"raw-socket"
      (Printf.sprintf
         "%s bypasses the batched transport; all datagram IO goes through \
          Lbrm_run.Sockmsg"
         n)
  else if ctx.protocol then begin
    (* [sans-io] *)
    (match sans_io_violation p e.exp_type with
    | Some msg -> emit ctx ~loc:e.exp_loc ~rule:"sans-io" msg
    | None -> ());
    (* [poly-compare] *)
    if poly_compare_always_banned n && from_stdlib p then
      emit ctx ~loc:e.exp_loc ~rule:"poly-compare"
        (Printf.sprintf
           "polymorphic %s is representation-dependent; use a dedicated \
            comparator (Int.compare, String.compare, Seqno.compare, ...)"
           n)
    else if poly_order_op n && from_stdlib p then begin
      let arg_ty =
        match Types.get_desc e.exp_type with
        | Types.Tarrow (_, a, _, _) -> Some a
        | _ -> None
      in
      match arg_ty with
      | Some a when not (order_safe (Lazy.force (lazy_env e)) a) ->
          emit ctx ~loc:e.exp_loc ~rule:"poly-compare"
            (Printf.sprintf
               "polymorphic (%s) at type %s whose structural order is not \
                deterministic; use a dedicated comparator"
               n
               (Format.asprintf "%a" Printtyp.type_expr a))
      | _ -> ()
    end
  end

let inspect ctx e =
  (match e.exp_desc with
  | Texp_ident (p, _, _) -> inspect_ident ctx e p
  | Texp_try (_, cases) ->
      List.iter
        (fun c ->
          if pattern_has_catch_all c.c_lhs then
            emit ctx ~loc:c.c_lhs.pat_loc ~rule:"catch-all"
              "catch-all `with _ ->` swallows every exception (including \
               Out_of_memory); match specific exceptions"
          else
            match pattern_catch_var c.c_lhs with
            | Some id when not (uses_ident id c.c_rhs) ->
                emit ctx ~loc:c.c_lhs.pat_loc ~rule:"catch-all"
                  "caught exception is never used: this handler silently \
                   swallows every exception; match specific exceptions"
            | _ -> ())
        cases
  | Texp_match (scrut, cases, _) when is_decode_app scrut ->
      List.iter
        (fun c ->
          if pattern_mentions_constr "Error" c.c_lhs && case_rhs_unreachable c
          then
            emit ctx ~loc:c.c_rhs.exp_loc ~rule:"decode-totality"
              "decode Error case is `assert false`: decode must stay total; \
               handle the error")
        cases
  | Texp_apply (f, args) -> (
      (* Result.get_ok (Codec.decode ...) / ignore (Codec.decode ...) *)
      let plain_args = List.filter_map (fun (_, a) -> a) args in
      (if is_ident_named [ "Result.get_ok"; "Result.get_error"; "Option.get" ] f
       then
         match plain_args with
         | [ a ] when is_decode_app a ->
             emit ctx ~loc:e.exp_loc ~rule:"decode-totality"
               "decode result forced with a partial accessor; match both Ok \
                and Error"
         | _ -> ());
      (if is_ident_named [ "ignore" ] f then
         match plain_args with
         | [ a ] when is_decode_app a ->
             emit ctx ~loc:e.exp_loc ~rule:"decode-totality"
               "decode result ignored; a dropped Error hides truncated or \
                corrupt packets"
         | _ -> ());
      (* [hashtbl-order] *)
      if ctx.protocol && ctx.sorted_depth = 0 then
        match is_hashtbl_traversal f with
        | Some name
          when mentions_io_action e.exp_type
               || List.exists subexpr_mentions_action plain_args ->
            emit ctx ~loc:e.exp_loc ~rule:"hashtbl-order"
              (Printf.sprintf
                 "%s feeds Io.actions in hash-bucket order; sort the elements \
                  first (bucket order is not part of the protocol)"
                 name)
        | _ -> ())
  | Texp_sequence (e1, _) when is_decode_app e1 ->
      emit ctx ~loc:e1.exp_loc ~rule:"decode-totality"
        "decode result discarded in sequence; match both Ok and Error"
  | _ -> ())

let make_iterator ctx =
  let open Tast_iterator in
  let expr sub e =
    inspect ctx e;
    match e.exp_desc with
    | Texp_apply (f, args) when is_sort_app f ->
        (* Arguments of a sort are, by construction, order-laundered. *)
        sub.expr sub f;
        ctx.sorted_depth <- ctx.sorted_depth + 1;
        List.iter (fun (_, a) -> Option.iter (sub.expr sub) a) args;
        ctx.sorted_depth <- ctx.sorted_depth - 1
    | Texp_apply (f, [ (_, Some x); (_, Some g) ])
      when is_ident_named [ "|>" ] f && is_sort_app g ->
        (* Hashtbl.fold ... |> List.sort cmp *)
        ctx.sorted_depth <- ctx.sorted_depth + 1;
        sub.expr sub x;
        ctx.sorted_depth <- ctx.sorted_depth - 1;
        sub.expr sub g
    | Texp_apply (f, [ (_, Some g); (_, Some x) ])
      when is_ident_named [ "@@" ] f && is_sort_app g ->
        (* List.sort cmp @@ Hashtbl.fold ... *)
        sub.expr sub g;
        ctx.sorted_depth <- ctx.sorted_depth + 1;
        sub.expr sub x;
        ctx.sorted_depth <- ctx.sorted_depth - 1
    | _ -> default_iterator.expr sub e
  in
  let value_binding sub vb =
    (match (vb.vb_pat.pat_desc, vb.vb_expr) with
    | Tpat_any, e when is_decode_app e ->
        emit ctx ~loc:vb.vb_loc ~rule:"decode-totality"
          "decode result bound to _; match both Ok and Error"
    | _ -> ());
    default_iterator.value_binding sub vb
  in
  { default_iterator with expr; value_binding }

(* --- entry points ------------------------------------------------------ *)

let protocol_dirs =
  [ "lib/util/"; "lib/wire/"; "lib/sim/"; "lib/core/"; "lib/baselines/" ]

let classify src = List.exists (fun d -> has_prefix ~prefix:d src) protocol_dirs

(* Lint one .cmt file.  [root] resolves the relative -I paths recorded
   in the cmt (needed to reconstruct typing environments for type
   abbreviation expansion); when they do not resolve the checker falls
   back to structural type inspection.  [manifest] entries feed the
   [hot-alloc] pass; [telemetry] is the cross-file accumulator for
   [dead-telemetry] (facts are reported by Lint_telemetry.finish once
   every file has been scanned). *)
let lint_cmt ?(all_rules = false) ?(root = ".") ?manifest ?telemetry path =
  let cmt = Cmt_format.read_cmt path in
  let normalize_src src =
    (* ppx-preprocessed modules record "foo.pp.ml"; report "foo.ml". *)
    if Filename.check_suffix src ".pp.ml" then
      Filename.chop_suffix src ".pp.ml" ^ ".ml"
    else src
  in
  match (cmt.Cmt_format.cmt_sourcefile, cmt.Cmt_format.cmt_annots) with
  | Some src, Cmt_format.Implementation str
    when Filename.check_suffix src ".ml" ->
      let src = normalize_src src in
      let dirs =
        Config.standard_library
        :: List.map
             (fun d -> if Filename.is_relative d then Filename.concat root d else d)
             cmt.Cmt_format.cmt_loadpath
      in
      Load_path.init ~auto_include:Load_path.no_auto_include dirs;
      let ctx =
        { src; protocol = all_rules || classify src; sorted_depth = 0; out = [] }
      in
      let it = make_iterator ctx in
      it.structure it str;
      let alloc =
        match manifest with
        | Some entries -> Lint_alloc.check_structure ~manifest:entries ~src str
        | None -> []
      in
      let pool = Lint_pool.check_structure ~src str in
      Option.iter (fun acc -> Lint_telemetry.scan_structure acc ~src str)
        telemetry;
      List.sort compare_finding (ctx.out @ alloc @ pool)
  | _ -> []

let cmts_of_dir dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".cmt")
  |> List.sort String.compare
  |> List.map (Filename.concat dir)

(* Lint a set of .cmt files and/or directories; returns the remaining
   findings after the allowlist plus one finding per stale allowlist
   entry.  [manifest] is the path to the hot-path manifest
   (lint.hotpaths); when absent the [hot-alloc] pass is skipped.  The
   [dead-telemetry] pass always runs, accumulating across every file
   in the invocation — the whole tree must therefore be linted in one
   run for its verdict to be meaningful. *)
let run ?(all_rules = false) ?(root = ".") ?(allow = []) ?manifest paths =
  let files =
    List.concat_map
      (fun p -> if Sys.is_directory p then cmts_of_dir p else [ p ])
      paths
  in
  let entries, manifest_findings =
    match manifest with
    | None -> (None, [])
    | Some path ->
        let entries, errs = Lint_alloc.load_manifest path in
        (Some entries, errs)
  in
  let telemetry = Lint_telemetry.create () in
  let found =
    List.concat_map
      (fun f -> lint_cmt ~all_rules ~root ?manifest:entries ~telemetry f)
      files
  in
  let found =
    found @ manifest_findings
    @ (match (manifest, entries) with
      | Some path, Some entries -> Lint_alloc.finish ~manifest_file:path entries
      | _ -> [])
    @ Lint_telemetry.finish telemetry
  in
  let kept = List.filter (fun f -> not (allowed allow f)) found in
  let stale =
    List.filter_map
      (fun e ->
        if e.a_used then None
        else
          let missing =
            not (Sys.file_exists (Filename.concat root e.a_file))
          in
          Some
            {
              file = e.a_file;
              line = (match e.a_line with Some l -> l | None -> 0);
              rule = "stale-allow";
              msg =
                (if missing then
                   Printf.sprintf
                     "allowlist entry `%s %s` names a file that no longer \
                      exists; delete it"
                     e.a_rule e.a_file
                 else
                   Printf.sprintf
                     "allowlist entry `%s %s` matched nothing; delete it"
                     e.a_rule e.a_file);
            })
      allow
  in
  List.sort compare_finding (kept @ stale)
