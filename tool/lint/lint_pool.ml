(* [pool-leak]: path-sensitive lease/release discipline for Buf_pool.

   Every `Buf_pool.lease` must reach exactly one `Buf_pool.release` (or
   a documented ownership transfer) on every control-flow path of the
   function that leased it, including the exceptional ones.  The pass
   tracks each let-bound lease through Lint_cfg's abstract evaluator:

     Live         leased, release still owed on this path
     Done         released (or reported; findings don't cascade)
     Transferred  ownership documented elsewhere via [@lint.owns];
                  one release is still permitted (release of a
                  transferred fallback buf is a no-op by contract)
     Mixed        join of paths that disagree — released on some,
                  not on others

   Escapes — storing a Live slot into a constructed block, passing it
   to a storing function (Array.set, Hashtbl.add, ...), or capturing
   it in a closure — end local reasoning, so they are findings unless
   the expression carries [@lint.owns "who releases"], the repo's
   ownership-transfer convention (DESIGN.md).  Raises are modelled at
   the known raisers (failwith, invalid_arg, raise, assert) when no
   enclosing in-function handler exists; a `try` handler is analysed
   from the pre-body state, which over-approximates every point the
   body could raise from.

   The pass is intraprocedural over top-level bindings: a lease
   returned to a caller or threaded through a helper needs
   [@lint.owns]. *)

open Typedtree
module C = Lint_common

let rule = "pool-leak"

type status = Live | Done | Transferred | Mixed

let callee_is e names =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> C.path_ends_with p names
  | _ -> false

let is_lease_app e =
  match e.exp_desc with
  | Texp_apply (f, _) -> callee_is f [ "Buf_pool"; "lease" ]
  | _ -> false

let storing_fn n =
  match n with
  | "Array.make" | "Array.set" | "Array.unsafe_set" | "Array.fill"
  | "Hashtbl.add" | "Hashtbl.replace" | "Queue.add" | "Queue.push" ->
      true
  | _ -> false

let raising e =
  match e.exp_desc with
  | Texp_assert _ -> true
  | Texp_apply (f, _) -> (
      match f.exp_desc with
      | Texp_ident (p, _, _) -> (
          match C.norm_path p with
          | "failwith" | "invalid_arg" | "raise" | "raise_notrace" -> true
          | _ -> false)
      | _ -> false)
  | _ -> false

module State = struct
  type slot = { loc : Location.t; status : status; depth : int }

  type t = {
    src : string;
    out : C.finding list ref;
    depth : int; (* closure nesting; a deeper reference is a capture *)
    slots : (Ident.t * slot) list;
  }

  let emit t loc msg =
    t.out := { C.file = t.src; line = C.line_of loc; rule; msg } :: !(t.out)

  let join_status a b =
    if a = b then a
    else
      match (a, b) with
      | (Done | Transferred), (Done | Transferred) -> Done
      | _ -> Mixed

  let join a b =
    let merged =
      List.map
        (fun (id, sa) ->
          match List.find_opt (fun (id', _) -> Ident.same id id') b.slots with
          | Some (_, sb) ->
              (id, { sa with status = join_status sa.status sb.status })
          | None -> (id, sa))
        a.slots
    in
    let only_b =
      List.filter
        (fun (id, _) ->
          not (List.exists (fun (id', _) -> Ident.same id id') a.slots))
        b.slots
    in
    { a with slots = merged @ only_b }

  let find t id =
    List.find_opt (fun (id', _) -> Ident.same id id') t.slots |> Option.map snd

  let set t id status =
    {
      t with
      slots =
        List.map
          (fun (id', s) ->
            if Ident.same id id' then (id', { s with status }) else (id', s))
          t.slots;
    }

  let bind (env : Lint_cfg.env) _pre id rhs post =
    if is_lease_app rhs then
      let status =
        if C.has_attr env.attrs C.attr_owns then Transferred else Live
      in
      {
        post with
        slots =
          (id, { loc = rhs.exp_loc; status; depth = post.depth }) :: post.slots;
      }
    else post

  let owns_doc = "[@lint.owns \"who releases\"]"

  let expr (env : Lint_cfg.env) t e =
    match e.exp_desc with
    | Texp_apply (f, args) when callee_is f [ "Buf_pool"; "release" ] ->
        List.fold_left
          (fun t (_, a) ->
            match a with
            | Some { exp_desc = Texp_ident (Path.Pident id, _, _); _ } -> (
                match find t id with
                | None -> t
                | Some s -> (
                    match s.status with
                    | Live | Transferred -> set t id Done
                    | Done ->
                        emit t e.exp_loc
                          "buffer released twice along this path";
                        t
                    | Mixed ->
                        emit t e.exp_loc
                          "buffer may already have been released on a path \
                           reaching this release";
                        set t id Done))
            | _ -> t)
          t args
    | Texp_apply (f, _) when callee_is f [ "Buf_pool"; "lease" ] -> (
        match env.parent with
        | Lint_cfg.Bind _ -> t
        | _ ->
            if C.has_attr env.attrs C.attr_owns then t
            else begin
              emit t e.exp_loc
                ("lease result is not bound, so its release cannot be \
                  tracked; bind it or document the transfer with " ^ owns_doc);
              t
            end)
    | Texp_ident (Path.Pident id, _, _) -> (
        match find t id with
        | Some s when s.status = Live || s.status = Mixed ->
            let owns = C.has_attr env.attrs C.attr_owns in
            if t.depth > s.depth then
              if owns then set t id Transferred
              else begin
                emit t e.exp_loc
                  ("leased buffer captured by a closure; release cannot be \
                    verified — document the transfer with " ^ owns_doc);
                set t id Done
              end
            else (
              match env.parent with
              | Lint_cfg.Build ->
                  if owns then set t id Transferred
                  else begin
                    emit t e.exp_loc
                      ("leased buffer escapes into a heap structure before \
                        release; release it first or document the transfer \
                        with " ^ owns_doc);
                    set t id Done
                  end
              | Lint_cfg.Arg (Some callee)
                when storing_fn (C.norm_path callee) ->
                  if owns then set t id Transferred
                  else begin
                    emit t e.exp_loc
                      (Printf.sprintf
                         "leased buffer stored via %s before release; release \
                          it first or document the transfer with %s"
                         (C.norm_path callee) owns_doc);
                    set t id Done
                  end
              | _ -> t)
        | _ -> t)
    | _ -> t

  let may_raise _env t e =
    if raising e then
      List.fold_left
        (fun t (id, s) ->
          match s.status with
          | Live | Mixed ->
              emit t e.exp_loc
                (Printf.sprintf
                   "an exception raised here leaks the buffer leased at line \
                    %d; release before raising, or catch and release"
                   (C.line_of s.loc));
              set t id Done
          | Done | Transferred -> t)
        t t.slots
    else t

  let scope_end t id =
    match find t id with
    | None -> t
    | Some s ->
        (match s.status with
        | Live ->
            emit t s.loc
              "leased buffer is never released; every Buf_pool.lease must \
               reach exactly one release or a documented [@lint.owns] transfer"
        | Mixed ->
            emit t s.loc
              "leased buffer is released on some control-flow paths but not \
               all"
        | Done | Transferred -> ());
        {
          t with
          slots = List.filter (fun (id', _) -> not (Ident.same id id')) t.slots;
        }

  let enter_function t = { t with depth = t.depth + 1 }
end

module Eval = Lint_cfg.Make (State)

let check_structure ~src str =
  let out = ref [] in
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              ignore
                (Eval.run { State.src; out; depth = 0; slots = [] } vb.vb_expr))
            vbs
      | _ -> ())
    str.str_items;
  !out
