(* SARIF 2.1.0 rendering of lint findings — the machine-readable twin
   of the `file:line: [rule] message` text form, so CI can upload the
   report as an artifact and code-scanning UIs can ingest it.  The
   subset emitted here is the minimal valid shape: one run, one driver,
   one result per finding with a physical location. *)

module C = Lint_common

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rule_ids findings =
  List.sort_uniq String.compare (List.map (fun f -> f.C.rule) findings)

let to_string findings =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
     \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
     \"name\":\"lbrm-lint\",\
     \"informationUri\":\"https://example.invalid/lbrm\",\"rules\":[";
  List.iteri
    (fun i id ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "{\"id\":\"%s\"}" (json_escape id)))
    (rule_ids findings);
  Buffer.add_string b "]}},\"results\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"ruleId\":\"%s\",\"level\":\"error\",\"message\":{\"text\":\
            \"%s\"},\"locations\":[{\"physicalLocation\":{\
            \"artifactLocation\":{\"uri\":\"%s\",\"uriBaseId\":\"SRCROOT\"},\
            \"region\":{\"startLine\":%d}}}]}"
           (json_escape f.C.rule) (json_escape f.C.msg) (json_escape f.C.file)
           (max 1 f.C.line)))
    findings;
  Buffer.add_string b "]}]}";
  Buffer.contents b

let write path findings =
  let oc = open_out path in
  output_string oc (to_string findings);
  output_char oc '\n';
  close_out oc
