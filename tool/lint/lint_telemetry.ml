(* [dead-telemetry]: cross-module liveness for the observability plane.

   Two vocabularies can rot silently: the Trace event constructors
   (PR 5's typed trace vocabulary) and the interned Metrics names.
   This pass accumulates facts across every .cmt in the run and
   reports the difference at the end:

   - every constructor of a variant type marked [@@lint.telemetry]
     must be constructed somewhere in the analysed tree — a
     constructor that only ever appears in the renderer's match is
     vocabulary nobody emits;
   - every Metrics handle bound with `let h = Metrics.counter/gauge/
     sample t name` must be written (incr/add/set/observe) or escape
     into a structure that plausibly writes it.  Reads (value/read)
     and `ignore` do not keep a handle alive.  The dominant inline
     form `Metrics.incr (Metrics.counter t name)` registers and
     writes in one expression and needs no tracking.

   Handle liveness is keyed by (module, identifier name): precise
   enough for the repo's flat metric bindings, and any aliasing slack
   errs toward silence, not false findings. *)

open Typedtree
module C = Lint_common

let rule = "dead-telemetry"

type acc = {
  declared : (string * string, string * int) Hashtbl.t;
      (* (type name, constructor) -> declaration (src, line) *)
  constructed : (string * string, unit) Hashtbl.t;
  registered : (string * string, string * int * string) Hashtbl.t;
      (* (module, ident) -> (src, line, kind) *)
  written : (string * string, unit) Hashtbl.t;
  used : (string * string, unit) Hashtbl.t; (* escaped: assumed live *)
  mutable out : C.finding list;
}

let create () =
  {
    declared = Hashtbl.create 64;
    constructed = Hashtbl.create 512;
    registered = Hashtbl.create 32;
    written = Hashtbl.create 64;
    used = Hashtbl.create 64;
    out = [];
  }

let module_of_src src =
  Filename.basename src |> Filename.remove_extension |> String.capitalize_ascii

(* (module, name) for a reference: a Pident resolves inside the module
   being scanned; a dotted path carries its module with it. *)
let key_of_path ~modname p =
  match p with
  | Path.Pident id -> (modname, Ident.name id)
  | _ -> (
      let n = C.norm_path p in
      match String.rindex_opt n '.' with
      | Some i ->
          (String.sub n 0 i, String.sub n (i + 1) (String.length n - i - 1))
      | None -> (modname, n))

let register_kind e =
  match e.exp_desc with
  | Texp_apply (f, _) -> (
      match f.exp_desc with
      | Texp_ident (p, _, _) ->
          if C.path_ends_with p [ "Metrics"; "counter" ] then Some "counter"
          else if C.path_ends_with p [ "Metrics"; "gauge" ] then Some "gauge"
          else if C.path_ends_with p [ "Metrics"; "sample" ] then Some "sample"
          else None
      | _ -> None)
  | _ -> None

let write_fn p =
  C.path_ends_with p [ "Metrics"; "incr" ]
  || C.path_ends_with p [ "Metrics"; "add" ]
  || C.path_ends_with p [ "Metrics"; "set" ]
  || C.path_ends_with p [ "Metrics"; "observe" ]
  || C.path_ends_with p [ "Stats"; "Sample"; "add" ]

let read_fn p =
  C.path_ends_with p [ "Metrics"; "value" ]
  || C.path_ends_with p [ "Metrics"; "read" ]

let handle_ty ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
      C.path_ends_with p [ "Metrics"; "counter" ]
      || C.path_ends_with p [ "Metrics"; "gauge" ]
      || C.path_ends_with p [ "Stats"; "Sample"; "t" ]
  | _ -> false

let scan_structure acc ~src str =
  let modname = module_of_src src in
  (* Telemetry vocabulary declarations. *)
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_type (_, tds) ->
          List.iter
            (fun td ->
              if C.has_attr td.typ_attributes C.attr_telemetry then
                match td.typ_kind with
                | Ttype_variant cds ->
                    List.iter
                      (fun cd ->
                        Hashtbl.replace acc.declared
                          (td.typ_name.txt, cd.cd_name.txt)
                          (src, C.line_of cd.cd_loc))
                      cds
                | _ ->
                    acc.out <-
                      {
                        C.file = src;
                        line = C.line_of td.typ_loc;
                        rule;
                        msg = "[@@lint.telemetry] only applies to variant types";
                      }
                      :: acc.out)
            tds
      | _ -> ())
    str.str_items;
  (* Handle uses consumed by a write/read/ignore are claimed at the
     application so the generic ident case below doesn't count them as
     escapes. *)
  let claimed : (Location.t, unit) Hashtbl.t = Hashtbl.create 16 in
  let claim (e : expression) = Hashtbl.replace claimed e.exp_loc () in
  let expr sub e =
    (match e.exp_desc with
    | Texp_construct (_, cd, _) ->
        let tyname =
          match Types.get_desc cd.Types.cstr_res with
          | Types.Tconstr (p, _, _) -> Path.last p
          | _ -> ""
        in
        Hashtbl.replace acc.constructed (tyname, cd.Types.cstr_name) ()
    | Texp_apply (f, args) -> (
        match f.exp_desc with
        | Texp_ident (p, _, _) when write_fn p ->
            List.iter
              (fun (_, a) ->
                match a with
                | Some ae when handle_ty ae.exp_type -> (
                    claim ae;
                    match ae.exp_desc with
                    | Texp_ident (ap, _, _) ->
                        Hashtbl.replace acc.written (key_of_path ~modname ap)
                          ()
                    | _ -> ())
                | _ -> ())
              args
        | Texp_ident (p, _, _)
          when read_fn p || String.equal (C.norm_path p) "ignore" ->
            (* Neither a read nor an ignore keeps a handle alive. *)
            List.iter
              (fun (_, a) ->
                match a with
                | Some ae when handle_ty ae.exp_type -> claim ae
                | _ -> ())
              args
        | _ -> ())
    | _ -> ());
    (match e.exp_desc with
    | Texp_ident (p, _, _)
      when handle_ty e.exp_type && not (Hashtbl.mem claimed e.exp_loc) ->
        Hashtbl.replace acc.used (key_of_path ~modname p) ()
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let value_binding sub vb =
    (match (vb.vb_pat.pat_desc, register_kind vb.vb_expr) with
    | Tpat_var (id, _), Some kind ->
        Hashtbl.replace acc.registered
          (modname, Ident.name id)
          (src, C.line_of vb.vb_expr.exp_loc, kind)
    | _ -> ());
    Tast_iterator.default_iterator.value_binding sub vb
  in
  let it = { Tast_iterator.default_iterator with expr; value_binding } in
  it.structure it str

let finish acc =
  let dead_cstrs =
    Hashtbl.fold
      (fun (ty, cstr) (src, line) out ->
        if Hashtbl.mem acc.constructed (ty, cstr) then out
        else
          {
            C.file = src;
            line;
            rule;
            msg =
              Printf.sprintf
                "constructor %s of [@@lint.telemetry] type `%s` is never \
                 emitted by any machine; delete it or emit it"
                cstr ty;
          }
          :: out)
      acc.declared []
  in
  let dead_metrics =
    Hashtbl.fold
      (fun ((_, name) as key) (src, line, kind) out ->
        if Hashtbl.mem acc.written key || Hashtbl.mem acc.used key then out
        else
          {
            C.file = src;
            line;
            rule;
            msg =
              Printf.sprintf
                "%s handle `%s` is interned but never written; delete the \
                 registration or write it"
                kind name;
          }
          :: out)
      acc.registered []
  in
  acc.out @ dead_cstrs @ dead_metrics
